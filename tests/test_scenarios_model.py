"""Scenario object model: round-trips, validation, registries.

The serialization contract under test: dict → Scenario → TOML → Scenario
yields identical objects and identical content fingerprints, for every
bundled scenario and for hand-built ones covering each policy family and
the workload-override path.
"""

import pytest

from repro.core.policies import (
    POLICY_KINDS,
    DoubleR,
    ImmediateReissue,
    MultipleR,
    NoReissue,
    ReissuePolicy,
    SingleD,
    SingleR,
)
from repro.scenarios import (
    DISTRIBUTIONS,
    POLICIES,
    SYSTEMS,
    Scenario,
    bundled_scenario,
    bundled_scenario_names,
    bundled_scenarios,
    dumps,
    loads,
    make_distribution,
    make_policy,
    scenario,
    system_spec_ref,
)

ALL_POLICIES = [
    NoReissue(),
    ImmediateReissue(2),
    SingleD(30.0),
    SingleR(6.0, 0.5),
    DoubleR(2.0, 0.3, 9.0, 0.7),
    MultipleR([(1.0, 0.2), (5.0, 0.9)]),
    ReissuePolicy([(0.5, 0.1)]),
]


def handcrafted_scenarios():
    out = [
        scenario(
            f"rt-{type(pol).__name__.lower()}",
            system="queueing",
            utilization=0.3,
            policy=pol,
            percentile=0.95,
            budget=0.25,
            n_queries=1_000,
            seeds=(101, 103),
        )
        for pol in ALL_POLICIES
    ]
    out.append(
        scenario(
            "rt-workload-override",
            system="correlated",
            policy=SingleD(75.0),
            workload={
                "service": {"kind": "lognormal", "mu": 3.0, "sigma": 0.8},
                "correlation": 0.5,
            },
            sla_ms=250.0,
            n_queries=1_000,
        )
    )
    return out


def all_round_trip_scenarios():
    return bundled_scenarios() + handcrafted_scenarios()


@pytest.mark.parametrize(
    "sc", all_round_trip_scenarios(), ids=lambda s: s.name
)
class TestRoundTrip:
    def test_dict_round_trip(self, sc):
        again = Scenario.from_dict(sc.to_dict())
        assert again == sc
        assert again.fingerprint() == sc.fingerprint()

    def test_toml_round_trip(self, sc):
        again = loads(dumps(sc))
        assert again == sc
        assert again.fingerprint() == sc.fingerprint()

    def test_double_toml_round_trip_is_stable(self, sc):
        text = dumps(sc)
        assert dumps(loads(text)) == text

    def test_validates(self, sc):
        assert sc.validate() == []

    def test_policy_reconstructs(self, sc):
        policy = sc.build_policy()
        again = Scenario.from_dict(sc.to_dict()).build_policy()
        assert again == policy
        assert hash(again) == hash(policy)
        assert type(again) is type(policy)


class TestTomlStringEscaping:
    @pytest.mark.parametrize(
        "description",
        [
            "line1\nline2",
            "tab\there and a return\r",
            'quotes "and" back\\slashes',
            "control \x01 char",
        ],
        ids=["newline", "tab-cr", "quotes-backslash", "control"],
    )
    def test_special_characters_round_trip(self, description):
        sc = scenario(
            "escapes",
            system="independent",
            policy="none",
            description=description,
            n_queries=100,
        )
        again = loads(dumps(sc))
        assert again.description == description
        assert again == sc


class TestFingerprintCanonicalization:
    def test_int_and_float_spellings_share_a_fingerprint(self):
        int_toml = loads(
            'name = "fp"\n[system]\nkind = "queueing"\n'
            "[policy]\nkind = \"single-r\"\ndelay = 6\nprob = 1\n"
            "[scale]\nn_queries = 1000\nseeds = [101]\n"
        )
        float_toml = loads(
            'name = "fp"\n[system]\nkind = "queueing"\n'
            "[policy]\nkind = \"single-r\"\ndelay = 6.0\nprob = 1.0\n"
            "[scale]\nn_queries = 1000\nseeds = [101]\n"
        )
        assert int_toml.fingerprint() == float_toml.fingerprint()

    def test_python_policy_matches_int_valued_toml(self):
        from_python = scenario(
            "fp", system="queueing", policy=SingleR(6, 1),
            n_queries=1000, seeds=(101,),
        )
        from_toml = loads(
            'name = "fp"\n[system]\nkind = "queueing"\n'
            "[policy]\nkind = \"single-r\"\ndelay = 6\nprob = 1\n"
            "[objective]\npercentile = 0.99\n"
            "[scale]\nn_queries = 1000\nseeds = [101]\n"
        )
        assert from_python.fingerprint() == from_toml.fingerprint()

    def test_different_values_still_differ(self):
        a = scenario("fp", system="queueing", policy=SingleR(6.0, 1.0))
        b = scenario("fp", system="queueing", policy=SingleR(7.0, 1.0))
        assert a.fingerprint() != b.fingerprint()


class TestBundled:
    def test_at_least_four_bundled_scenarios(self):
        assert len(bundled_scenario_names()) >= 4

    def test_bundled_by_name(self):
        sc = bundled_scenario("queueing-tail-quick")
        assert sc.system.kind == "queueing"
        assert sc.scale.seeds == (101, 103)

    def test_unknown_bundled_name(self):
        with pytest.raises(KeyError, match="available"):
            bundled_scenario("no-such-scenario")


class TestValidation:
    def test_unknown_system(self):
        sc = scenario("bad", system="mainframe", policy="none")
        assert any("mainframe" in p for p in sc.validate())
        with pytest.raises(ValueError, match="mainframe"):
            sc.check()

    def test_unknown_policy_kind(self):
        sc = scenario("bad", system="queueing", policy="quadruple-r")
        assert any("quadruple-r" in p for p in sc.validate())

    def test_unknown_system_param(self):
        sc = scenario("bad", system="queueing", policy="none", fanout=3)
        assert any("fanout" in p for p in sc.validate())

    def test_workload_override_rejected_for_intrinsic_workload(self):
        sc = scenario(
            "bad",
            system="redis",
            policy="none",
            workload={"service": {"kind": "pareto"}},
        )
        assert any("intrinsic" in p for p in sc.validate())

    def test_correlation_rejected_where_unsupported(self):
        sc = scenario(
            "bad",
            system="independent",
            policy="none",
            workload={"correlation": 0.5},
        )
        assert any("correlation" in p for p in sc.validate())

    def test_bad_percentile(self):
        sc = scenario("bad", system="queueing", policy="none", percentile=1.5)
        assert any("percentile" in p for p in sc.validate())

    def test_empty_seeds(self):
        sc = scenario("bad", system="queueing", policy="none", seeds=())
        assert any("seed" in p for p in sc.validate())

    def test_unknown_toplevel_field_rejected(self):
        with pytest.raises(ValueError, match="unknown top-level"):
            Scenario.from_dict(
                {
                    "name": "x",
                    "system": {"kind": "queueing"},
                    "policy": {"kind": "none"},
                    "surprise": 1,
                }
            )

    def test_nested_table_in_system_params_rejected_at_parse_time(self):
        # A distribution table under [system] (instead of
        # [workload.service]) must fail loudly when the spec is built,
        # not crash deep inside the factory at run time.
        with pytest.raises(ValueError, match=r"workload.service"):
            Scenario.from_dict(
                {
                    "name": "x",
                    "system": {"kind": "queueing", "base": {"kind": "pareto"}},
                    "policy": {"kind": "none"},
                }
            )

    def test_nested_dict_in_policy_params_rejected(self):
        with pytest.raises(ValueError, match=r"\[policy\]"):
            Scenario.from_dict(
                {
                    "name": "x",
                    "system": {"kind": "queueing"},
                    "policy": {"kind": "single-r", "delay": {"ms": 6}},
                }
            )

    def test_unknown_scale_field_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            Scenario.from_dict(
                {
                    "name": "x",
                    "system": {"kind": "queueing"},
                    "policy": {"kind": "none"},
                    "scale": {"n_query": 10},
                }
            )


class TestPolicySpecRoundTrip:
    """Satellite: to_spec()/from_spec() across every ReissuePolicy family."""

    @pytest.mark.parametrize(
        "policy", ALL_POLICIES, ids=lambda p: type(p).__name__
    )
    def test_round_trip_preserves_type_eq_hash(self, policy):
        spec = policy.to_spec()
        again = ReissuePolicy.from_spec(spec)
        assert type(again) is type(policy)
        assert again == policy
        assert hash(again) == hash(policy)
        assert again.stages == policy.stages
        assert again.to_spec() == spec

    def test_spec_is_primitive(self):
        spec = MultipleR([(1.0, 0.2), (5.0, 0.9)]).to_spec()

        def primitive(v):
            if isinstance(v, (str, int, float, bool)) or v is None:
                return True
            if isinstance(v, (list, tuple)):
                return all(primitive(x) for x in v)
            if isinstance(v, dict):
                return all(primitive(x) for x in v.values())
            return False

        assert primitive(spec)

    def test_every_kind_registered(self):
        assert set(POLICY_KINDS) == set(POLICIES.names())

    def test_missing_kind(self):
        with pytest.raises(ValueError, match="kind"):
            ReissuePolicy.from_spec({"delay": 3.0})

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="septuple"):
            ReissuePolicy.from_spec({"kind": "septuple-r"})

    def test_bad_params_name_the_kind(self):
        with pytest.raises(ValueError, match="single-r"):
            ReissuePolicy.from_spec({"kind": "single-r", "wait": 3.0})

    def test_eq_across_construction_routes(self):
        # The (d, q=1) corner of SingleR is the same stage list as a
        # SingleD — cross-family equality follows stage identity.
        assert SingleR(30.0, 1.0) == SingleD(30.0)
        assert hash(SingleR(30.0, 1.0)) == hash(SingleD(30.0))


class TestRegistries:
    def test_make_policy_matches_direct_construction(self):
        assert make_policy("single-r", delay=6.0, prob=0.5) == SingleR(6.0, 0.5)
        assert make_policy("none") == NoReissue()

    def test_make_policy_unknown_kind(self):
        with pytest.raises(KeyError, match="registered"):
            make_policy("telepathic")

    def test_third_party_policy_registration_is_constructible(self):
        # The advertised extension path: POLICIES.register alone must be
        # enough for make_policy and scenario specs to build the kind.
        class FixedPair(ReissuePolicy):
            def __init__(self, delay: float = 1.0):
                super().__init__([(float(delay), 0.5), (2 * float(delay), 0.5)])

        POLICIES.register("fixed-pair", FixedPair, summary="test-only")
        try:
            built = make_policy("fixed-pair", delay=3.0)
            assert isinstance(built, FixedPair)
            assert built.stages == ((3.0, 0.5), (6.0, 0.5))
            sc = scenario(
                "third-party",
                system="independent",
                policy={"kind": "fixed-pair", "delay": 3.0},
                n_queries=100,
            )
            assert sc.validate() == []
            assert sc.build_policy() == built
        finally:
            POLICIES._entries.pop("fixed-pair")

    def test_make_distribution(self):
        dist = make_distribution("pareto", shape=1.1, mode=2.0)
        assert dist.shape == 1.1

    def test_distribution_bad_param_names_entry(self):
        with pytest.raises(ValueError, match="pareto"):
            DISTRIBUTIONS.build("pareto", slope=2.0)

    def test_system_spec_ref_identical_to_direct_ref(self):
        from repro.pipeline.fingerprint import fingerprint
        from repro.pipeline.spec import system_ref
        from repro.simulation.workloads import queueing_workload

        via_registry = system_spec_ref(
            "queueing", n_queries=1000, utilization=0.3
        )
        direct = system_ref(queueing_workload, n_queries=1000, utilization=0.3)
        assert fingerprint(via_registry) == fingerprint(direct)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            SYSTEMS.register("queueing", lambda: None)

    def test_registry_lists_builtins(self):
        assert {"independent", "correlated", "queueing", "redis", "lucene"} <= set(
            SYSTEMS.names()
        )
        assert {"pareto", "lognormal", "exponential"} <= set(
            DISTRIBUTIONS.names()
        )
