"""Out-of-core fits are bit-for-bit equal to the in-memory fits."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimizer import quantile_higher_sorted
from repro.optimize import FitRequest, solve
from repro.optimize.storefit import (
    compute_optimal_singled_chunked,
    compute_optimal_singler_chunked,
    load_trace_evidence,
)
from repro.optimize.vectorized import (
    compute_optimal_singled_vectorized,
    compute_optimal_singler_vectorized,
)
from repro.store import EmpiricalStore, StoreNotSortedError, TraceWriter


def bits(fit):
    """Exact float identity, not approx: the tentpole contract."""
    return dataclasses.astuple(fit)


def make_store(path, samples, pairs=None, *, block_records=64):
    with TraceWriter(path, block_records=block_records, sorted=True) as w:
        w.append(np.sort(np.asarray(samples, dtype=np.float64)))
        if pairs is not None:
            w.begin_segment("pairs", 2)
            w.append(np.asarray(pairs, dtype=np.float64))
    return path


log_strategy = st.lists(
    st.floats(0.1, 1e4, allow_nan=False), min_size=20, max_size=400
)


class TestChunkedEqualsVectorized:
    @settings(max_examples=40, deadline=None)
    @given(
        samples=log_strategy,
        percentile=st.sampled_from([0.9, 0.95, 0.99]),
        budget=st.sampled_from([0.01, 0.05, 0.2]),
        chunk=st.sampled_from([1, 3, 7, 64]),
    )
    def test_singler_bitwise(self, samples, percentile, budget, chunk):
        rx = np.sort(np.asarray(samples, dtype=np.float64))
        expected = compute_optimal_singler_vectorized(
            rx, rx, percentile, budget
        )
        got = compute_optimal_singler_chunked(
            rx, rx, percentile, budget, chunk=chunk
        )
        assert bits(got) == bits(expected)

    @settings(max_examples=40, deadline=None)
    @given(
        samples=log_strategy,
        percentile=st.sampled_from([0.9, 0.95, 0.99]),
        budget=st.sampled_from([0.01, 0.05, 0.2]),
        chunk=st.sampled_from([1, 5, 128]),
    )
    def test_singled_bitwise(self, samples, percentile, budget, chunk):
        rx = np.sort(np.asarray(samples, dtype=np.float64))
        expected = compute_optimal_singled_vectorized(
            rx, rx, percentile, budget
        )
        got = compute_optimal_singled_chunked(
            rx, rx, percentile, budget, chunk=chunk
        )
        assert bits(got) == bits(expected)

    def test_distinct_reissue_log(self, rng):
        rx = np.sort(rng.lognormal(2.0, 0.6, 5000))
        ry = np.sort(rng.lognormal(1.5, 0.4, 3000))
        expected = compute_optimal_singler_vectorized(rx, ry, 0.99, 0.05)
        got = compute_optimal_singler_chunked(rx, ry, 0.99, 0.05, chunk=777)
        assert bits(got) == bits(expected)

    def test_release_called_between_chunks(self, rng):
        rx = np.sort(rng.exponential(5.0, 2000))
        calls = []
        compute_optimal_singler_chunked(
            rx, rx, 0.99, 0.05, chunk=100, release=lambda: calls.append(1)
        )
        assert len(calls) > 1


class TestQuantileHigherSorted:
    @settings(max_examples=50, deadline=None)
    @given(
        samples=st.lists(
            st.floats(0.0, 1e6, allow_nan=False), min_size=1, max_size=500
        ),
        p=st.floats(0.0, 1.0),
    )
    def test_matches_np_quantile(self, samples, p):
        x = np.sort(np.asarray(samples, dtype=np.float64))
        assert quantile_higher_sorted(x, p) == float(
            np.quantile(x, p, method="higher")
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            quantile_higher_sorted(np.empty(0), 0.5)


class TestSolverIntegration:
    def test_empirical_solver_store_vs_memory(self, tmp_path, rng):
        samples = rng.lognormal(2.0, 0.6, 20_000)
        path = make_store(tmp_path / "t.store", samples)
        mem = solve(
            FitRequest(rx=samples, percentile=0.99, budget=0.05), "empirical"
        )
        store = solve(
            FitRequest(
                rx=EmpiricalStore(path), percentile=0.99, budget=0.05
            ),
            "empirical",
        )
        assert store.meta["store"] is True
        assert "store" not in mem.meta
        assert store.policy.to_spec() == mem.policy.to_spec()
        assert bits(store.fit) == bits(mem.fit)

    def test_correlated_solver_store_vs_memory(self, tmp_path, rng):
        samples = rng.lognormal(2.0, 0.6, 8000)
        pair_x = rng.lognormal(2.0, 0.6, 600)
        pair_y = 0.5 * pair_x + rng.lognormal(1.0, 0.3, 600)
        pairs = np.column_stack([pair_x, pair_y])
        path = make_store(tmp_path / "c.store", samples, pairs)
        kwargs = dict(
            pair_x=pair_x, pair_y=pair_y, percentile=0.99, budget=0.05
        )
        mem = solve(FitRequest(rx=samples, **kwargs), "correlated")
        store = solve(
            FitRequest(rx=EmpiricalStore(path), **kwargs), "correlated"
        )
        assert store.meta["store"] is True
        assert store.policy.to_spec() == mem.policy.to_spec()
        assert bits(store.fit) == bits(mem.fit)


class TestLoadTraceEvidence:
    def test_store_path_yields_empirical_store(self, tmp_path, rng):
        samples = rng.exponential(5.0, 1000)
        pairs = rng.exponential(5.0, (50, 2))
        path = make_store(tmp_path / "t.store", samples, pairs)
        evidence = load_trace_evidence(str(path))
        assert isinstance(evidence["rx"], EmpiricalStore)
        np.testing.assert_array_equal(evidence["pair_x"], pairs[:, 0])
        np.testing.assert_array_equal(evidence["pair_y"], pairs[:, 1])

    def test_unsorted_store_raises_actionable(self, tmp_path, rng):
        path = tmp_path / "u.store"
        with TraceWriter(path, block_records=64) as w:
            w.append(rng.exponential(5.0, 100))
        with pytest.raises(StoreNotSortedError, match="repro store sort"):
            load_trace_evidence(str(path))

    def test_csv_path_loads_whole(self, tmp_path, rng):
        from repro.io.tracelog import TraceLog, write_trace

        samples = rng.exponential(5.0, 100)
        csv = tmp_path / "t.csv"
        write_trace(csv, TraceLog(primary=samples))
        evidence = load_trace_evidence(str(csv))
        np.testing.assert_array_equal(evidence["rx"], samples)
        assert "pair_x" not in evidence
