"""Tests for repro.bench and the ``repro bench`` regression gate."""

import json

import pytest

from repro import bench
from repro.main import main


def record(**metrics):
    return {
        "version": bench.HISTORY_VERSION,
        "recorded_unix": 0,
        "python": "3.x",
        "machine": "test",
        "metrics": metrics,
    }


def write_history(path, records):
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    return path


class TestGate:
    def test_first_record_cannot_regress(self):
        report = bench.check_regressions([record(m=5.0)])
        assert report.ok
        assert report.skipped == ["m"]
        assert report.checked == []

    def test_within_threshold_passes(self):
        history = [record(m=5.0), record(m=5.0), record(m=4.1)]
        report = bench.check_regressions(history)
        assert report.ok
        assert report.checked == ["m"]

    def test_regression_past_threshold_fails(self):
        history = [record(m=5.0), record(m=5.0), record(m=3.9)]
        report = bench.check_regressions(history)
        assert not report.ok
        (reg,) = report.regressions
        assert reg.metric == "m"
        assert reg.baseline == 5.0
        assert reg.drop == pytest.approx(0.22)
        assert "below" in reg.describe()

    def test_baseline_is_median_of_window(self):
        # Seven prior records, but only the last five form the baseline:
        # median(4.0, 4.0, 6.0, 6.0, 6.0) = 6.0, so 4.5 is a 25% drop.
        history = [
            record(m=100.0),
            record(m=100.0),
            record(m=4.0),
            record(m=4.0),
            record(m=6.0),
            record(m=6.0),
            record(m=6.0),
            record(m=4.5),
        ]
        report = bench.check_regressions(history)
        (reg,) = report.regressions
        assert reg.baseline == 6.0

    def test_new_metric_mid_history_is_skipped(self):
        history = [record(old=2.0), record(old=2.0, new=9.0)]
        report = bench.check_regressions(history)
        assert report.ok
        assert report.skipped == ["new"]
        assert report.checked == ["old"]

    def test_empty_history(self):
        assert bench.check_regressions([]).ok


class TestHistoryFile:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "h.jsonl"
        bench.append_history(path, record(m=1.0))
        bench.append_history(path, record(m=2.0))
        history = bench.load_history(path)
        assert [r["metrics"]["m"] for r in history] == [1.0, 2.0]

    def test_missing_file_is_empty(self, tmp_path):
        assert bench.load_history(tmp_path / "absent.jsonl") == []

    def test_corrupt_line_reports_position(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text(json.dumps(record(m=1.0)) + "\nnot json\n")
        with pytest.raises(ValueError, match=r"h\.jsonl:2"):
            bench.load_history(path)

    def test_record_without_metrics_rejected(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text('{"recorded_unix": 0}\n')
        with pytest.raises(ValueError, match="metrics"):
            bench.load_history(path)


class TestRendering:
    def test_trend_needs_two_records(self):
        assert "no trend yet" in bench.render_trend([record(m=1.0)])

    def test_trend_chart(self):
        text = bench.render_trend([record(m=1.0), record(m=2.0), record(m=3.0)])
        assert "speedup trajectory" in text
        assert "m" in text

    def test_record_table_from_metrics_only(self):
        text = bench.render_record(record(m=2.5))
        assert "repro bench" in text
        assert "2.50x" in text


class TestBenchCommand:
    @pytest.fixture
    def fake_suite(self, monkeypatch):
        """Replace the timing suite with an instant deterministic one."""

        def fake(name, speedup):
            def run(repeats=2):
                return {
                    "metric": f"{name}.speedup",
                    "baseline_s": 0.2,
                    "optimized_s": 0.2 / speedup,
                    "speedup": speedup,
                    "detail": "synthetic",
                }

            return run

        monkeypatch.setattr(
            bench, "SUITE", {"alpha": fake("alpha", 4.0), "beta": fake("beta", 2.0)}
        )

    def test_run_appends_and_passes(self, tmp_path, capsys, fake_suite):
        history = tmp_path / "h.jsonl"
        assert main(["bench", "--history", str(history)]) == 0
        out = capsys.readouterr().out
        assert "alpha.speedup" in out and "beta.speedup" in out
        assert "no trend yet" in out
        records = bench.load_history(history)
        assert len(records) == 1
        assert records[0]["metrics"] == {"alpha.speedup": 4.0, "beta.speedup": 2.0}
        # A second run draws the trend and still passes.
        assert main(["bench", "--history", str(history)]) == 0
        assert "speedup trajectory" in capsys.readouterr().out
        assert len(bench.load_history(history)) == 2

    def test_only_selects_benches(self, tmp_path, capsys, fake_suite):
        history = tmp_path / "h.jsonl"
        assert main(["bench", "--history", str(history), "--only", "alpha"]) == 0
        assert bench.load_history(history)[0]["metrics"] == {"alpha.speedup": 4.0}

    def test_no_append_leaves_history_untouched(self, tmp_path, fake_suite):
        history = tmp_path / "h.jsonl"
        assert main(["bench", "--history", str(history), "--no-append"]) == 0
        assert not history.exists()

    def test_synthetic_regression_fails_nonzero(self, tmp_path, capsys):
        # The acceptance check: inject a >20% drop into the history and
        # the gate must exit non-zero.
        history = write_history(
            tmp_path / "h.jsonl",
            [record(m=5.0), record(m=5.0), record(m=5.0), record(m=3.0)],
        )
        assert main(["bench", "--history", str(history), "--check-only"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "40% below" in out

    def test_healthy_history_passes_check_only(self, tmp_path, capsys):
        history = write_history(
            tmp_path / "h.jsonl", [record(m=5.0), record(m=4.8)]
        )
        assert main(["bench", "--history", str(history), "--check-only"]) == 0
        assert "gate ok" in capsys.readouterr().out

    def test_check_only_without_history_errors(self, tmp_path, capsys):
        missing = tmp_path / "none.jsonl"
        assert main(["bench", "--history", str(missing), "--check-only"]) == 2
        assert "no history" in capsys.readouterr().err

    def test_corrupt_history_errors(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        path.write_text("not json\n")
        assert main(["bench", "--history", str(path), "--check-only"]) == 2
        assert "error" in capsys.readouterr().err

    def test_json_output(self, tmp_path, capsys, fake_suite):
        history = tmp_path / "h.jsonl"
        assert main(["bench", "--history", str(history), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["record"]["metrics"]["alpha.speedup"] == 4.0
        assert doc["history_records"] == 1

    def test_custom_threshold(self, tmp_path, capsys):
        # A 10% drop passes the default gate but fails a 5% threshold.
        history = write_history(
            tmp_path / "h.jsonl", [record(m=5.0), record(m=4.5)]
        )
        args = ["bench", "--history", str(history), "--check-only"]
        assert main(args) == 0
        capsys.readouterr()
        assert main([*args, "--threshold", "0.05"]) == 1


class TestRealSuiteSmoke:
    def test_fastsim_bench_runs(self):
        # One tiny real measurement proves the suite wiring end to end;
        # no speed assertion — CI machines vary too much for that.
        result = bench.bench_fastsim(n_queries=300, seeds=(101,), repeats=1)
        assert result["metric"] == "fastsim.speedup_vs_reference"
        assert result["speedup"] > 0
        assert result["baseline_s"] > 0 and result["optimized_s"] > 0
