"""Tests for the data-driven MultipleR fitter and the arrival processes."""

import numpy as np
import pytest

from repro.core.multi import compute_optimal_multipler
from repro.core.optimizer import compute_optimal_singler
from repro.simulation.arrivals import (
    BurstyArrivals,
    DeterministicArrivals,
    PoissonArrivals,
    TraceArrivals,
)


def heavy_log(n=3000, seed=0):
    rng = np.random.default_rng(seed)
    return rng.pareto(1.1, n) * 2.0 + 2.0


class TestMultipleRFit:
    def test_budget_respected(self):
        rx = heavy_log()
        fit = compute_optimal_multipler(rx, rx, 0.95, 0.15, n_stages=2,
                                        delay_grid=8, prob_grid=4)
        from repro.core.multi import _policy_budget

        spent = _policy_budget(np.sort(rx), np.sort(rx), fit.stages)
        assert spent <= 0.15 + 1e-9

    def test_never_beats_singler_theorem32_on_logs(self):
        """The empirical face of Theorem 3.2: a 2-stage grid search cannot
        (meaningfully) beat the optimal SingleR fit on the same log."""
        rx = heavy_log(seed=3)
        sr = compute_optimal_singler(rx, rx, 0.95, 0.15)
        mr = compute_optimal_multipler(rx, rx, 0.95, 0.15, n_stages=2,
                                       delay_grid=10, prob_grid=5)
        # Grid discretization may land a hair below the sweep's sample-
        # aligned answer; "no more than 2% better" is the theorem check.
        assert mr.predicted_tail >= sr.predicted_tail * 0.98

    def test_single_stage_matches_singler_family(self):
        rx = heavy_log(seed=1)
        mr = compute_optimal_multipler(rx, rx, 0.9, 0.2, n_stages=1,
                                       delay_grid=16, prob_grid=2)
        sr = compute_optimal_singler(rx, rx, 0.9, 0.2)
        assert mr.predicted_tail >= sr.predicted_tail * 0.98
        assert mr.predicted_tail <= mr.baseline_tail

    def test_policy_property(self):
        rx = heavy_log(seed=2)
        fit = compute_optimal_multipler(rx, rx, 0.9, 0.2, n_stages=2,
                                        delay_grid=6, prob_grid=3)
        pol = fit.policy
        assert pol.n_stages == 2

    def test_validation(self):
        rx = heavy_log(n=100)
        with pytest.raises(ValueError):
            compute_optimal_multipler([], rx, 0.9, 0.1)
        with pytest.raises(ValueError):
            compute_optimal_multipler(rx, rx, 0.9, 0.0)
        with pytest.raises(ValueError):
            compute_optimal_multipler(rx, rx, 0.9, 0.1, n_stages=0)


class TestArrivalProcesses:
    def test_deterministic_spacing(self):
        arr = DeterministicArrivals(4.0).generate(8)
        assert np.allclose(np.diff(arr), 0.25)

    def test_deterministic_invalid_rate(self):
        with pytest.raises(ValueError):
            DeterministicArrivals(0.0)

    def test_bursty_rate_approximately_preserved(self):
        proc = BurstyArrivals(rate=2.0, burst_factor=4.0, burst_fraction=0.2)
        arr = proc.generate(200_000, np.random.default_rng(0))
        rate = arr.size / arr[-1]
        assert rate == pytest.approx(2.0, rel=0.25)

    def test_bursty_is_burstier_than_poisson(self):
        rng = np.random.default_rng(1)
        n = 100_000
        bursty = BurstyArrivals(2.0, burst_factor=6.0).generate(n, rng)
        poisson = PoissonArrivals(2.0).generate(n, np.random.default_rng(1))

        def window_cv(ts, w=10.0):
            counts = np.bincount((ts / w).astype(int))
            return counts.std() / counts.mean()

        assert window_cv(bursty) > 1.5 * window_cv(poisson)

    def test_bursty_sorted_nonnegative(self):
        arr = BurstyArrivals(1.0).generate(5000, np.random.default_rng(2))
        assert np.all(np.diff(arr) >= 0)
        assert arr[0] >= 0

    def test_bursty_validation(self):
        with pytest.raises(ValueError):
            BurstyArrivals(rate=1.0, burst_factor=0.5)
        with pytest.raises(ValueError):
            BurstyArrivals(rate=1.0, burst_fraction=0.0)

    def test_trace_replay(self):
        proc = TraceArrivals([0.0, 1.0, 2.5])
        assert np.array_equal(proc.generate(2), [0.0, 1.0])

    def test_trace_exhaustion(self):
        with pytest.raises(ValueError):
            TraceArrivals([0.0]).generate(2)

    def test_trace_must_be_sorted(self):
        with pytest.raises(ValueError):
            TraceArrivals([1.0, 0.5])


class TestBurstyRobustness:
    """Bursty arrivals probe the boundary of the paper's assumptions.

    Reissue exploits *spare capacity elsewhere*. With mild bursts there is
    still idle capacity and SingleR helps; with overload bursts
    (instantaneous rho > 1 cluster-wide) every reissue adds load exactly
    when there is none to spare, and the measured reissue rate runs away
    from the nominal budget — a failure mode worth pinning.
    """

    @staticmethod
    def _run(burst_factor, policy_budget, rate, service, seed=5):
        from repro.core.policies import NoReissue, SingleR
        from repro.simulation.engine import ClusterConfig, simulate_cluster
        from repro.simulation.workloads import ServiceModel

        cfg = ClusterConfig(
            arrivals=BurstyArrivals(rate=rate, burst_factor=burst_factor),
            service_model=ServiceModel(service),
            n_queries=20_000,
            n_servers=4,
        )
        base = simulate_cluster(cfg, NoReissue(), seed)
        rx = base.primary_response_times
        d = float(np.quantile(rx, 0.90))
        q = min(1.0, policy_budget / max(float((rx > d).mean()), 1e-9))
        hedged = simulate_cluster(cfg, SingleR(d, q), seed)
        return base, hedged

    def test_singler_helps_under_mild_bursts_with_heavy_services(self):
        # Heavy-tailed services at low load: the tail comes from slow
        # requests blocking individual servers, which reissue to spare
        # replicas rescues even when arrivals are bursty.
        from repro.distributions import Pareto

        base, hedged = self._run(
            burst_factor=1.8, policy_budget=0.05, rate=0.055,
            service=Pareto(1.1, 2.0),
        )
        assert hedged.tail(0.99) < base.tail(0.99)

    def test_synchronized_bursts_defeat_hedging(self):
        # Cluster-wide bursts leave no spare capacity anywhere: reissue
        # cannot reduce the tail (and must not be *expected* to).
        from repro.distributions import Exponential

        base, hedged = self._run(
            burst_factor=5.0, policy_budget=0.05, rate=1.6,
            service=Exponential(1.0),
        )
        assert hedged.tail(0.99) >= base.tail(0.99) * 0.95

    def test_overload_bursts_blow_the_budget(self):
        # burst_factor=5 => instantaneous rho = 2: reissue feedback makes
        # the measured rate run past nominal; pin the failure mode.
        from repro.distributions import Exponential

        _, hedged = self._run(
            burst_factor=5.0, policy_budget=0.05, rate=1.6,
            service=Exponential(1.0),
        )
        assert hedged.reissue_rate > 0.05 * 1.5
