"""Tests for the Redis substrate's data plane (SetStore, §6.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.systems.setstore import (
    SetCorpusConfig,
    SetIntersectionWorkload,
    SetStore,
    sample_cardinalities,
)


@pytest.fixture(scope="module")
def store():
    return SetStore.build_synthetic(
        SetCorpusConfig(n_sets=50, median_cardinality=100, sigma=1.0),
        rng=np.random.default_rng(0),
        materialize=True,
    )


class TestCommands:
    def test_sadd_dedups_and_counts(self):
        s = SetStore()
        assert s.sadd("k", [3, 1, 2, 3]) == 3
        assert s.sadd("k", [3, 4]) == 4
        assert s.scard("k") == 4

    def test_sismember(self):
        s = SetStore()
        s.sadd("k", [10, 20])
        assert s.sismember("k", 10)
        assert not s.sismember("k", 15)
        assert not s.sismember("missing", 1)

    def test_sinter_correctness(self):
        s = SetStore()
        s.sadd("a", [1, 2, 3, 4])
        s.sadd("b", [3, 4, 5])
        assert np.array_equal(s.sinter("a", "b"), [3, 4])
        assert s.sinter_card("a", "b") == 2

    def test_sinter_missing_key_raises(self):
        s = SetStore()
        s.sadd("a", [1])
        with pytest.raises(KeyError):
            s.sinter("a", "nope")

    def test_container_protocol(self, store):
        assert len(store) == 50
        assert "set:0000" in store
        assert store.keys() == sorted(store.keys())


class TestCostModel:
    def test_cost_uses_min_cardinality(self):
        s = SetStore(overhead_ms=0.1, elements_per_ms=100.0)
        s.sadd("small", range(10))
        s.sadd("big", range(1000))
        assert s.intersection_cost_ms("small", "big") == pytest.approx(
            0.1 + 10 / 100.0
        )

    def test_vectorized_cost_matches_scalar(self, store):
        keys = store.keys()[:10]
        cards = np.array([store.scard(k) for k in keys])
        vec = store.cost_ms_from_cardinalities(cards[:5], cards[5:])
        for i in range(5):
            expected = store.overhead_ms + min(cards[i], cards[5 + i]) / store.elements_per_ms
            assert vec[i] == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            SetStore(overhead_ms=-1.0)
        with pytest.raises(ValueError):
            SetStore(elements_per_ms=0.0)


class TestCorpus:
    def test_cardinalities_respect_cap(self):
        cfg = SetCorpusConfig(max_cardinality=500)
        cards = sample_cardinalities(cfg, 2000, np.random.default_rng(1))
        assert cards.max() <= 500
        assert cards.min() >= 1

    def test_materialized_members_in_universe(self, store):
        arr = store._sets["set:0000"]
        assert arr.min() >= 1
        assert np.all(np.diff(arr) > 0)  # sorted, unique

    def test_default_profile_matches_paper(self):
        """The headline §6.2 service-time profile (fig9 moments)."""
        s = SetStore.build_synthetic(
            rng=np.random.default_rng(2), materialize=False
        )
        w = SetIntersectionWorkload(s)
        cost = w.sample_primary(40_000, np.random.default_rng(1))
        assert cost.mean() == pytest.approx(2.37, abs=0.8)
        assert 5 <= (cost > 150).sum() <= 60  # "a handful (~20)"
        assert (cost < 10).mean() > 0.93  # "over 98% below 10ms" (we hit ~96%)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SetCorpusConfig(n_sets=1)
        with pytest.raises(ValueError):
            SetCorpusConfig(sigma=0.0)
        with pytest.raises(ValueError):
            SetCorpusConfig(max_cardinality=2_000_000)


class TestWorkload:
    def test_pairs_are_distinct(self, store):
        w = SetIntersectionWorkload(store)
        pairs = w.sample_pairs(5000, np.random.default_rng(0))
        assert np.all(pairs[:, 0] != pairs[:, 1])
        assert pairs.min() >= 0 and pairs.max() < 50

    def test_reissue_equals_primary(self, store):
        w = SetIntersectionWorkload(store)
        x = np.array([1.0, 5.0])
        assert np.array_equal(w.sample_reissue(x), x)

    def test_exact_mean_matches_sampled(self, store):
        w = SetIntersectionWorkload(store)
        sampled = w.sample_primary(200_000, np.random.default_rng(3)).mean()
        assert w.mean_service() == pytest.approx(sampled, rel=0.05)

    def test_freeze_trace_replays(self, store):
        w = SetIntersectionWorkload(store)
        frozen = w.freeze_trace(100, np.random.default_rng(0))
        a = w.sample_primary(100, np.random.default_rng(1))
        b = w.sample_primary(100, np.random.default_rng(2))
        assert np.array_equal(a, b)
        assert np.array_equal(a, frozen)

    def test_freeze_trace_tiles(self, store):
        w = SetIntersectionWorkload(store)
        w.freeze_trace(10, np.random.default_rng(0))
        out = w.sample_primary(25)
        assert np.array_equal(out[:10], out[10:20])

    def test_thaw_restores_randomness(self, store):
        w = SetIntersectionWorkload(store)
        w.freeze_trace(50, np.random.default_rng(0))
        w.thaw_trace()
        a = w.sample_primary(50, np.random.default_rng(1))
        b = w.sample_primary(50, np.random.default_rng(2))
        assert not np.array_equal(a, b)

    def test_execute_returns_real_intersection(self, store):
        w = SetIntersectionWorkload(store)
        out = w.execute((0, 1))
        expected = store.sinter("set:0000", "set:0001")
        assert np.array_equal(out, expected)

    def test_needs_two_sets(self):
        s = SetStore()
        s.sadd("only", [1])
        with pytest.raises(ValueError):
            SetIntersectionWorkload(s)


@settings(max_examples=30, deadline=None)
@given(
    a=st.lists(st.integers(1, 1000), min_size=1, max_size=60),
    b=st.lists(st.integers(1, 1000), min_size=1, max_size=60),
)
def test_property_sinter_equals_python_sets(a, b):
    s = SetStore()
    s.sadd("a", a)
    s.sadd("b", b)
    assert set(s.sinter("a", "b").tolist()) == set(a) & set(b)
