"""Engine equivalence and the RunResult-based report.

The acceptance contract: the same Scenario object runs under all four
engines; ``reference`` and ``fastsim`` agree bit-for-bit per seed for
**every registered system** (the test parametrizes over the registry, so
registering a new system without adding an equivalence scenario fails
here); the ``pipeline`` engine reproduces ``fastsim`` exactly (including
through a cache replay); the ``serving`` engine returns the same report
shape from a live asyncio run.
"""

import numpy as np
import pytest

from repro.core.interfaces import RunResult
from repro.core.policies import SingleD, SingleR
from repro.scenarios import SYSTEMS, Session, bundled_scenario, scenario

# Small but non-trivial per-system scenarios for the equivalence matrix.
EQUIVALENCE_SCENARIOS = {
    "independent": scenario(
        "eq-independent",
        system="independent",
        policy=SingleR(4.0, 0.5),
        percentile=0.99,
        n_queries=2_000,
        seeds=(101, 103),
    ),
    "correlated": scenario(
        "eq-correlated",
        system="correlated",
        policy=SingleR(4.0, 0.5),
        workload={"correlation": 0.7},
        percentile=0.99,
        n_queries=2_000,
        seeds=(101, 103),
    ),
    "queueing": scenario(
        "eq-queueing",
        system="queueing",
        utilization=0.3,
        policy=SingleR(6.0, 0.5),
        percentile=0.95,
        n_queries=1_200,
        seeds=(101, 103),
    ),
    "redis": scenario(
        "eq-redis",
        system="redis",
        utilization=0.3,
        policy=SingleR(25.0, 0.5),
        percentile=0.99,
        n_queries=1_000,
        seeds=(101,),
    ),
    "lucene": scenario(
        "eq-lucene",
        system="lucene",
        utilization=0.3,
        policy=SingleD(120.0),
        percentile=0.99,
        n_queries=1_000,
        seeds=(101,),
    ),
}


def assert_runs_equal(a: RunResult, b: RunResult):
    np.testing.assert_array_equal(a.latencies, b.latencies)
    np.testing.assert_array_equal(
        a.primary_response_times, b.primary_response_times
    )
    np.testing.assert_array_equal(a.reissue_pair_x, b.reissue_pair_x)
    np.testing.assert_array_equal(a.reissue_pair_y, b.reissue_pair_y)
    assert a.reissue_rate == b.reissue_rate
    assert a.utilization == b.utilization


def test_equivalence_matrix_covers_every_registered_system():
    assert set(EQUIVALENCE_SCENARIOS) == set(SYSTEMS.names()), (
        "a system was (un)registered; update EQUIVALENCE_SCENARIOS so the "
        "reference-vs-fastsim contract keeps covering every system"
    )


@pytest.mark.parametrize("kind", sorted(EQUIVALENCE_SCENARIOS))
def test_reference_and_fastsim_agree_bit_for_bit(kind):
    sc = EQUIVALENCE_SCENARIOS[kind]
    ref = Session("reference").run(sc)
    fast = Session("fastsim").run(sc)
    assert ref.seeds == fast.seeds == sc.scale.seeds
    assert len(ref.runs) == len(fast.runs) == len(sc.scale.seeds)
    for a, b in zip(ref.runs, fast.runs):
        assert_runs_equal(a, b)
    assert ref.median_tail == fast.median_tail


class TestPipelineEngine:
    def test_matches_fastsim_and_replays_from_cache(self, tmp_path):
        sc = EQUIVALENCE_SCENARIOS["queueing"]
        fast = Session("fastsim").run(sc)
        cache = tmp_path / "cache"
        cold = Session("pipeline", cache_dir=cache).run(sc)
        for a, b in zip(fast.runs, cold.runs):
            assert_runs_equal(a, b)
        assert cold.meta["pipeline"]["cache_misses"] == len(sc.scale.seeds)

        warm = Session("pipeline", cache_dir=cache).run(sc)
        for a, b in zip(fast.runs, warm.runs):
            assert_runs_equal(a, b)
        assert warm.meta["pipeline"]["cache_hits"] == len(sc.scale.seeds)
        assert warm.meta["pipeline"]["jobs"] == 0

    def test_parallel_matches_serial(self):
        sc = EQUIVALENCE_SCENARIOS["independent"]
        serial = Session("pipeline").run(sc)
        parallel = Session("pipeline", workers=2).run(sc)
        for a, b in zip(serial.runs, parallel.runs):
            assert_runs_equal(a, b)


class TestServingEngine:
    def test_bundled_scenario_serves_live(self):
        report = Session(
            "serving",
            engine_options={"requests": 120, "time_scale": 1e-6},
        ).run(bundled_scenario("queueing-tail-quick"), seeds=(3,))
        (run,) = report.runs
        assert run.n_queries == 120
        assert run.latencies.min() >= 0.0
        assert 0.0 <= run.reissue_rate <= len(run.latencies)
        assert np.isfinite(report.median_tail)
        assert run.meta["engine"] == "serving"
        assert run.meta["scenario"] == "queueing-tail-quick"

    def test_system_backends_resolve(self):
        # redis/lucene scenarios bridge to their workload backends.
        for kind, backend in (("redis", "RedisBackend"), ("lucene", "SearchBackend")):
            sc = EQUIVALENCE_SCENARIOS[kind]
            report = Session(
                "serving",
                engine_options={"requests": 40, "time_scale": 0.0},
            ).run(sc, seeds=(5,))
            assert report.runs[0].meta["backend"] == backend

    def test_engine_rejects_unknown_options(self):
        with pytest.raises(TypeError, match="serving"):
            Session(
                "serving", engine_options={"warp_factor": 9}
            ).run(EQUIVALENCE_SCENARIOS["independent"], seeds=(1,))


class TestAllEnginesOneScenario:
    """The headline acceptance: one bundled Scenario object, four engines."""

    def test_same_scenario_runs_everywhere(self):
        sc = bundled_scenario("queueing-tail-quick").with_scale(
            n_queries=600, seeds=(101,)
        )
        reports = {
            engine: Session(
                engine,
                engine_options=(
                    {"requests": 60, "time_scale": 1e-6}
                    if engine == "serving"
                    else {}
                ),
            ).run(sc)
            for engine in ("reference", "fastsim", "pipeline", "serving")
        }
        # Simulator engines: identical bits.
        assert_runs_equal(
            reports["reference"].runs[0], reports["fastsim"].runs[0]
        )
        assert_runs_equal(
            reports["reference"].runs[0], reports["pipeline"].runs[0]
        )
        # Every engine: the same report shape with the same summary keys.
        # The sanctioned exceptions are the per-engine execution
        # sections — "pipeline" (cache hits/misses, per-wave stats) and
        # "fastsim" (which kernel tier actually executed) — execution
        # detail only those engines can report.
        summaries = [r.summary() for r in reports.values()]
        assert reports["pipeline"].summary()["pipeline"]["per_wave"]
        assert reports["fastsim"].summary()["fastsim"]["kernel_tier"] in (
            "compiled",
            "numpy",
        )
        core = [
            {k for k in s if k not in ("pipeline", "fastsim")}
            for s in summaries
        ]
        assert all(keys == core[0] for keys in core)
        for report in reports.values():
            assert report.scenario is sc or report.scenario == sc
            text = report.render()
            assert "queueing-tail-quick" in text
            assert "P95" in text


class TestReport:
    def test_summary_and_sla(self):
        sc = EQUIVALENCE_SCENARIOS["queueing"]
        report = Session("fastsim").run(sc)
        s = report.summary()
        assert s["scenario"] == "eq-queueing"
        assert s["engine"] == "fastsim"
        assert s["median_tail_ms"] == report.median_tail
        # SLA verdict appears only when the objective declares one.
        assert "sla_met" not in s
        with_sla = Session("fastsim").run(
            scenario(
                "sla",
                system="independent",
                policy="none",
                percentile=0.5,
                sla_ms=1e9,
                n_queries=500,
                seeds=(1,),
            )
        )
        assert with_sla.sla_met is True
        assert with_sla.summary()["sla_met"] is True

    def test_within_budget_uses_documented_tolerance(self):
        from repro.scenarios.engines import ScenarioReport

        sc = scenario(
            "budgeted",
            system="independent",
            policy=SingleR(0.0, 0.5),  # measured rate ≈ 0.5
            budget=0.4,
            n_queries=500,
            seeds=(1,),
        )
        report = Session("fastsim").run(sc)
        assert 0.45 < report.median_reissue_rate < 0.55
        # 0.5 ≤ 1.5 × 0.4: within tolerance, and the summary says which
        # tolerance produced the verdict.
        assert report.within_budget is True
        s = report.summary()
        assert s["within_budget"] is True
        assert s["budget_tolerance"] == ScenarioReport.BUDGET_TOLERANCE == 1.5
        over = Session("fastsim").run(
            scenario(
                "over-budget",
                system="independent",
                policy=SingleR(0.0, 0.5),
                budget=0.2,  # 0.5 > 1.5 × 0.2
                n_queries=500,
                seeds=(1,),
            )
        )
        assert over.within_budget is False
        assert over.summary()["within_budget"] is False
        no_budget = Session("fastsim").run(
            scenario(
                "no-budget", system="independent", policy="none",
                n_queries=500, seeds=(1,),
            )
        )
        assert no_budget.within_budget is None
        assert "within_budget" not in no_budget.summary()

    def test_seed_override(self):
        sc = EQUIVALENCE_SCENARIOS["independent"]
        report = Session("fastsim").run(sc, seeds=(7,))
        assert report.seeds == (7,)
        assert len(report.runs) == 1


class TestEmptyTailError:
    """Satellite: RunResult.tail names the run instead of numpy's error."""

    def make_empty(self, meta):
        empty = np.empty(0)
        return RunResult(
            latencies=empty,
            primary_response_times=empty,
            reissue_pair_x=empty,
            reissue_pair_y=empty,
            reissue_rate=0.0,
            meta=meta,
        )

    def test_names_scenario(self):
        run = self.make_empty({"scenario": "my-scenario"})
        with pytest.raises(ValueError, match="my-scenario"):
            run.tail(0.99)

    def test_names_system_when_no_scenario(self):
        run = self.make_empty({"system": "redis-set-intersection"})
        with pytest.raises(ValueError, match="redis-set-intersection"):
            run.tail(0.99)

    def test_generic_label_without_meta(self):
        with pytest.raises(ValueError, match="no query latencies"):
            self.make_empty({}).tail(0.5)

    def test_nonempty_still_works(self):
        run = self.make_empty({})
        run.latencies = np.array([1.0, 2.0, 3.0])
        assert run.tail(0.5) == 2.0


class TestStoreCounterSurfacing:
    """Per-run trace-store activity lands in meta, summary(), render()."""

    SC = scenario(
        "eq-store-counters",
        system="independent",
        policy=SingleR(4.0, 0.5),
        percentile=0.99,
        n_queries=200,
        seeds=(101,),
    )

    def test_no_store_activity_no_meta(self):
        report = Session("reference").run(self.SC)
        assert "store" not in report.meta
        assert "store" not in report.summary()

    def test_store_deltas_attached_and_rendered(self, tmp_path, monkeypatch):
        # Wrap the reference engine so the run itself touches a store;
        # Session counts the counter deltas across the engine call.
        import numpy as np

        from repro.scenarios import engines
        from repro.store import TraceReader, TraceWriter

        path = tmp_path / "t.store"
        with TraceWriter(path, block_records=64) as w:
            w.append(np.arange(256, dtype=np.float64))

        inner = engines.ENGINES["reference"]

        def touching_engine(sc, seeds, **kw):
            reader = TraceReader(path)
            reader.read_segment("primary")
            reader.read_block(0)  # a cache hit
            return inner(sc, seeds, **kw)

        monkeypatch.setitem(engines.ENGINES, "reference", touching_engine)
        report = Session("reference").run(self.SC)
        store = report.meta["store"]
        assert store["blocks_loaded"] == 4
        assert store["cache_hits"] == 1
        assert store["bytes_read"] == 256 * 8
        assert report.summary()["store"] == store
        assert "trace store" in report.render()
