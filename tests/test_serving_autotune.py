"""Tests for the serving autotuner, including the end-to-end acceptance
scenario: a drifting synthetic backend served through HedgedClient with
autotuning beats NoReissue's p99 while keeping the measured policy
reissue spend near the configured budget."""

import asyncio

import numpy as np
import pytest

from repro.core.online import OnlinePolicyController
from repro.core.policies import NoReissue, SingleD, SingleR
from repro.distributions import LogNormal
from repro.serving import (
    AutoTuner,
    DriftingBackend,
    HedgedClient,
    SyntheticBackend,
)
from repro.serving.hedge import RequestOutcome


def outcome(latency=10.0, n_planned=0, n_reissues=0, deadline=False, pair=None):
    return RequestOutcome(
        query_id=0,
        latency_ms=latency,
        winner="primary",
        n_planned=n_planned,
        n_reissues=n_reissues,
        cancelled_attempts=0,
        deadline_exceeded=deadline,
        pair=pair,
    )


class TestSampleHygiene:
    def test_unhedged_latency_is_learned(self):
        tuner = AutoTuner(percentile=0.95, budget=0.1, batch_size=10)
        for _ in range(9):
            tuner.record(outcome(n_planned=0))
        assert tuner.samples_used == 9
        assert len(tuner.controller.log) == 0  # not flushed yet
        tuner.record(outcome(n_planned=0))
        assert len(tuner.controller.log) == 10  # flushed on batch boundary

    def test_hedged_latency_is_censored(self):
        tuner = AutoTuner(percentile=0.95, budget=0.1, batch_size=10)
        tuner.record(outcome(n_planned=1, n_reissues=1))
        assert tuner.samples_used == 0
        assert tuner.samples_discarded == 1

    def test_deadline_miss_is_discarded(self):
        tuner = AutoTuner(percentile=0.95, budget=0.1, batch_size=10)
        tuner.record(outcome(deadline=True))
        assert tuner.samples_discarded == 1

    def test_deadline_missing_probe_is_still_learned(self):
        # A probe's attempts both completed: fully observed even when it
        # missed the SLA.
        tuner = AutoTuner(percentile=0.95, budget=0.1, batch_size=10)
        tuner.record(
            outcome(n_planned=1, n_reissues=1, deadline=True,
                    pair=(80.0, 90.0))
        )
        assert tuner.samples_used == 1
        assert tuner.samples_discarded == 0

    def test_probe_contributes_pair_and_primary(self):
        tuner = AutoTuner(percentile=0.95, budget=0.1, batch_size=2)
        tuner.record(outcome(n_planned=1, n_reissues=1, pair=(8.0, 12.0)))
        tuner.record(outcome(n_planned=1, n_reissues=1, pair=(9.0, 4.0)))
        assert len(tuner.controller.log) == 2
        assert tuner.controller.log.n_pairs == 2

    def test_flush_empty_is_noop(self):
        tuner = AutoTuner(percentile=0.95, budget=0.1)
        tuner.flush()
        assert len(tuner.controller.log) == 0


class TestPolicyExposure:
    def test_initial_policy_before_any_refit(self):
        tuner = AutoTuner(
            percentile=0.95, budget=0.1, initial_policy=SingleD(25.0)
        )
        assert tuner.policy == SingleD(25.0)

    def test_default_initial_policy_is_cold_start_singler(self):
        tuner = AutoTuner(percentile=0.95, budget=0.1)
        assert isinstance(tuner.policy, SingleR)
        assert tuner.policy.prob == pytest.approx(0.1)

    def test_controller_policy_after_refit(self, rng):
        tuner = AutoTuner(
            percentile=0.95,
            budget=0.1,
            batch_size=300,
            refit_interval=300,
        )
        for _ in range(3):
            for x in rng.lognormal(3.0, 0.6, 300):
                tuner.record(outcome(latency=float(x)))
        assert tuner.n_refits >= 1
        assert tuner.policy is tuner.controller.policy
        assert tuner.policy.delay > 0.0

    def test_custom_controller_conflicts_with_kwargs(self):
        controller = OnlinePolicyController(percentile=0.95, budget=0.1)
        with pytest.raises(ValueError):
            AutoTuner(controller=controller, window=5_000)

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            AutoTuner(batch_size=0)


class TestExecutorRefits:
    """refit_mode="executor": refits run off the event loop; drain() is
    the deterministic read point and must reproduce sync-mode fits."""

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="refit_mode"):
            AutoTuner(refit_mode="thread")

    def test_executor_drain_matches_sync_policy(self, rng):
        xs = rng.lognormal(3.0, 0.6, 900)
        sync = AutoTuner(
            percentile=0.95, budget=0.1, batch_size=300, refit_interval=300
        )
        exe = AutoTuner(
            percentile=0.95, budget=0.1, batch_size=300, refit_interval=300,
            refit_mode="executor",
        )
        for x in xs:
            sync.record(outcome(latency=float(x)))
            exe.record(outcome(latency=float(x)))
        exe.drain()
        assert exe.n_refits == sync.n_refits >= 1
        assert exe.policy == sync.policy
        exe.close()

    def test_record_does_not_block_on_refit(self, rng):
        # In executor mode a flush enqueues work instead of fitting
        # inline: immediately after the batch boundary the refit may not
        # have landed yet, but drain() always observes it.
        tuner = AutoTuner(
            percentile=0.95, budget=0.1, batch_size=300, refit_interval=300,
            refit_mode="executor",
        )
        for x in rng.lognormal(3.0, 0.6, 300):
            tuner.record(outcome(latency=float(x)))
        tuner.drain()
        assert tuner.n_refits == 1
        tuner.close()

    def test_background_refit_errors_surface_on_drain(self):
        tuner = AutoTuner(
            percentile=0.95, budget=0.1, batch_size=10,
            refit_mode="executor",
        )
        for _ in range(10):
            tuner.record(outcome(latency=-5.0))  # invalid: negative time
        with pytest.raises(ValueError, match="non-negative"):
            tuner.drain()
        tuner.close()

    def test_errored_refit_survives_later_flushes(self, rng):
        # A failed background refit must not be pruned by a subsequent
        # flush's housekeeping: drain() still raises even when healthy
        # batches followed the bad one.
        tuner = AutoTuner(
            percentile=0.95, budget=0.1, batch_size=10,
            refit_mode="executor",
        )
        for _ in range(10):
            tuner.record(outcome(latency=-5.0))
        tuner._pending[-1].exception(timeout=5)  # let the failure land
        for x in rng.lognormal(3.0, 0.6, 10):
            tuner.record(outcome(latency=float(x)))  # prunes done futures
        with pytest.raises(ValueError, match="non-negative"):
            tuner.drain()
        tuner.close()

    def test_close_is_idempotent(self):
        tuner = AutoTuner(percentile=0.95, budget=0.1, refit_mode="executor")
        tuner.close()
        tuner.close()

    def test_live_serving_with_executor_refits(self):
        async def go():
            backend = SyntheticBackend(
                LogNormal(mu=3.0, sigma=0.8), time_scale=2e-5, rng=9
            )
            tuner = AutoTuner(
                percentile=0.99, budget=0.1, batch_size=400,
                refit_interval=400, refit_mode="executor",
            )
            client = HedgedClient(
                backend, tuner=tuner, probe_fraction=0.05, rng=10
            )
            await client.serve(2_000)
            return client

        client = asyncio.run(go())
        client.tuner.close()
        assert client.tuner.n_refits >= 1
        assert client.policy.delay > 0.0


class TestLiveAutotuning:
    def test_stationary_spend_tracks_budget(self):
        # On a stationary workload the tuned policy's measured spend must
        # settle near the configured budget.
        budget = 0.15

        async def go():
            # time_scale large enough that model milliseconds dominate
            # event-loop latency — at sub-ms wall sleeps the reissue
            # timer wins races the model says it should lose, inflating
            # the measured spend.
            backend = SyntheticBackend(
                LogNormal(mu=3.0, sigma=0.8), time_scale=2e-4, rng=5
            )
            tuner = AutoTuner(
                percentile=0.99,
                budget=budget,
                batch_size=400,
                refit_interval=400,
            )
            client = HedgedClient(
                backend, tuner=tuner, probe_fraction=0.04, rng=6
            )
            await client.serve(3_000)
            return client

        client = asyncio.run(go())
        rate = client.metrics.policy_reissue_rate
        assert rate == pytest.approx(budget, abs=0.6 * budget)
        assert client.tuner.n_refits >= 1

    def test_drifting_backend_autotune_beats_noreissue(self):
        # The acceptance scenario. Latency regime slows 2.5x a third of
        # the way in; the tuner must (a) fire an undamped drift refit,
        # (b) end with a policy matched to the new regime, and (c) beat
        # the NoReissue baseline's p99 on the identical workload while
        # spending a bounded reissue budget.
        n = 4_000
        budget = 0.15

        def make_backend():
            return DriftingBackend(
                LogNormal(mu=3.0, sigma=0.8),
                schedule=((0, 1.0), (n // 3, 2.5)),
                time_scale=1e-4,
                rng=7,
            )

        async def serve_hedged():
            tuner = AutoTuner(
                percentile=0.99,
                budget=budget,
                batch_size=500,
                refit_interval=500,
                drift_threshold=0.25,
                window=10_000,
            )
            client = HedgedClient(
                make_backend(),
                tuner=tuner,
                probe_fraction=0.05,
                concurrency=48,
                rng=11,
            )
            await client.serve(n)
            return client

        async def serve_baseline():
            client = HedgedClient(
                make_backend(), NoReissue(), concurrency=48, rng=11
            )
            await client.serve(n)
            return client

        hedged = asyncio.run(serve_hedged())
        baseline = asyncio.run(serve_baseline())

        p99_hedged = hedged.metrics.quantile(0.99)
        p99_baseline = baseline.metrics.quantile(0.99)
        assert p99_hedged < p99_baseline

        # The drift refit fired, undamped: the policy it installed equals
        # its fit exactly (no λ-damping toward the stale policy).
        drift_events = [
            e for e in hedged.tuner.events if e.reason == "drift"
        ]
        assert drift_events
        ev = drift_events[-1]
        assert ev.policy.delay == pytest.approx(ev.fit.delay)

        # Spend stayed bounded: the configured budget plus the transient
        # overspend between drift onset and the drift refit.
        rate = hedged.metrics.policy_reissue_rate
        assert 0.0 < rate <= 2.0 * budget

        # The final policy is tuned to the slow regime, not the fast one.
        assert hedged.policy.delay > 60.0

    def test_autotuned_policy_beats_cold_start_tail(self):
        # Even without drift, refitting beats the cold-start policy's d=0
        # on tail latency at equal budget — the point of §4.3.
        async def go(tuner):
            backend = SyntheticBackend(
                LogNormal(mu=3.0, sigma=0.8), time_scale=2e-5, rng=9
            )
            client = HedgedClient(
                backend, tuner=tuner, probe_fraction=0.05, rng=10
            )
            await client.serve(2_500)
            return client

        tuner = AutoTuner(
            percentile=0.99, budget=0.1, batch_size=400, refit_interval=400
        )
        client = asyncio.run(go(tuner))
        assert tuner.n_refits >= 1
        assert client.policy.delay > 0.0
