"""Streaming quantile sketches: P² and t-digest."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures import P2Quantile, TDigest


class TestP2Quantile:
    def test_small_stream_exact(self):
        q = P2Quantile(0.5)
        for x in [5.0, 1.0, 3.0]:
            q.add(x)
        assert q.value() == 3.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            P2Quantile(0.5).value()

    def test_bad_p(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    @pytest.mark.parametrize("p", [0.5, 0.9, 0.95, 0.99])
    def test_converges_on_exponential(self, p, rng):
        data = rng.exponential(10.0, 50000)
        est = P2Quantile(p)
        for x in data:
            est.add(x)
        true = np.quantile(data, p)
        assert est.value() == pytest.approx(true, rel=0.08)

    def test_converges_on_uniform(self, rng):
        data = rng.uniform(0, 1, 20000)
        est = P2Quantile(0.9)
        for x in data:
            est.add(x)
        assert est.value() == pytest.approx(0.9, abs=0.02)

    def test_count_tracks(self):
        est = P2Quantile(0.5)
        for i in range(10):
            est.add(float(i))
        assert est.count == 10


class TestTDigest:
    def test_single_value(self):
        d = TDigest()
        d.add(42.0)
        assert d.quantile(0.5) == 42.0

    def test_quantile_clamped_to_observed_range(self):
        # Regression (found by hypothesis): incremental centroid means
        # can cancel catastrophically and interpolate to exactly 0.0 for
        # all-negative data; quantiles must stay within [min, max].
        data = [-5.0, -2.4833964907801273e-16, -8.563584500489659e-272]
        d = TDigest(50)
        d.add_batch(np.asarray(data))
        for p in (0.25, 0.5, 0.75):
            assert min(data) <= d.quantile(p) <= max(data)

    def test_extremes_exact(self, rng):
        data = rng.normal(0, 1, 10000)
        d = TDigest(100)
        d.add_batch(data)
        assert d.quantile(0.0) == pytest.approx(float(data.min()))
        assert d.quantile(1.0) == pytest.approx(float(data.max()))

    @pytest.mark.parametrize("p", [0.5, 0.95, 0.99])
    def test_accuracy_lognormal(self, p, rng):
        data = rng.lognormal(1.0, 1.0, 50000)
        d = TDigest(200)
        d.add_batch(data)
        true = float(np.quantile(data, p))
        assert d.quantile(p) == pytest.approx(true, rel=0.05)

    def test_merge_equals_union(self, rng):
        a_data = rng.exponential(1.0, 20000)
        b_data = rng.exponential(5.0, 20000)
        a, b = TDigest(200), TDigest(200)
        a.add_batch(a_data)
        b.add_batch(b_data)
        merged = a.merge(b)
        union = np.concatenate([a_data, b_data])
        for p in (0.5, 0.9, 0.99):
            assert merged.quantile(p) == pytest.approx(
                float(np.quantile(union, p)), rel=0.08
            )

    def test_count(self, rng):
        d = TDigest()
        d.add_batch(rng.uniform(0, 1, 500))
        assert d.count == 500

    def test_compression_bounds_memory(self, rng):
        d = TDigest(50)
        d.add_batch(rng.uniform(0, 1, 100000))
        d._flush()
        assert d._means.size < 200

    def test_validation(self):
        with pytest.raises(ValueError):
            TDigest(5)
        d = TDigest()
        with pytest.raises(ValueError):
            d.quantile(0.5)
        with pytest.raises(ValueError):
            d.add(1.0, w=0.0)
        d.add(1.0)
        with pytest.raises(ValueError):
            d.quantile(1.5)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=500))
    @settings(max_examples=30, deadline=None)
    def test_median_within_range(self, data):
        d = TDigest(50)
        d.add_batch(np.asarray(data))
        m = d.quantile(0.5)
        assert min(data) <= m <= max(data)
