"""Tests for Mixture and the linear-correlated pair model."""

import numpy as np
import pytest

from repro.distributions import (
    Deterministic,
    Exponential,
    LinearCorrelatedPair,
    Mixture,
    Pareto,
    Uniform,
    empirical_correlation,
)


class TestMixture:
    def test_mean_is_weighted(self):
        m = Mixture([Deterministic(1.0), Deterministic(3.0)], [0.25, 0.75])
        assert m.mean() == pytest.approx(2.5)

    def test_cdf_is_weighted(self):
        m = Mixture([Uniform(0, 1), Uniform(1, 2)], [0.5, 0.5])
        assert float(m.cdf(1.0)) == pytest.approx(0.5)

    def test_sampling_proportions(self, rng):
        m = Mixture([Deterministic(0.0), Deterministic(10.0)], [0.9, 0.1])
        s = m.sample(20000, rng)
        assert np.mean(s == 10.0) == pytest.approx(0.1, abs=0.01)

    def test_weights_normalized(self):
        m = Mixture([Deterministic(1.0), Deterministic(2.0)], [2.0, 6.0])
        assert m.weights.tolist() == [0.25, 0.75]

    def test_validation(self):
        with pytest.raises(ValueError):
            Mixture([], [])
        with pytest.raises(ValueError):
            Mixture([Deterministic(1.0)], [1.0, 2.0])
        with pytest.raises(ValueError):
            Mixture([Deterministic(1.0)], [-1.0])
        with pytest.raises(ValueError):
            Mixture([Deterministic(1.0)], [0.0])


class TestLinearCorrelatedPair:
    def test_paper_model_shape(self, rng):
        pair = LinearCorrelatedPair(Pareto(1.1, 2.0), ratio=0.5)
        x, y = pair.sample_pairs(5000, rng)
        # Y = 0.5 x + Z with Z >= mode, so y >= 0.5 x + 2 always.
        assert np.all(y >= 0.5 * x + 2.0 - 1e-12)

    def test_zero_ratio_independent(self, rng):
        pair = LinearCorrelatedPair(Exponential(1.0), ratio=0.0)
        x, y = pair.sample_pairs(50000, rng)
        assert abs(empirical_correlation(x, y)) < 0.02

    def test_correlation_increases_with_ratio(self, rng):
        base = Exponential(1.0)
        cors = []
        for r in (0.0, 0.5, 1.0):
            x, y = LinearCorrelatedPair(base, r).sample_pairs(30000, rng)
            cors.append(empirical_correlation(x, y))
        assert cors[0] < cors[1] < cors[2]

    def test_mean_reissue(self):
        pair = LinearCorrelatedPair(Exponential(0.5), ratio=0.5)
        assert pair.mean_reissue() == pytest.approx(1.5 * 2.0)

    def test_negative_ratio_rejected(self):
        with pytest.raises(ValueError):
            LinearCorrelatedPair(Exponential(1.0), ratio=-0.1)


class TestEmpiricalCorrelation:
    def test_perfect_correlation(self):
        x = np.arange(10, dtype=float)
        assert empirical_correlation(x, 2 * x + 1) == pytest.approx(1.0)

    def test_constant_input_gives_zero(self):
        assert empirical_correlation(np.ones(10), np.arange(10.0)) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            empirical_correlation([1.0], [1.0, 2.0])
