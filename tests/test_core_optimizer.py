"""Tests for ComputeOptimalSingleR and the SingleD fit (paper §4.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimizer import (
    compute_optimal_singled,
    compute_optimal_singler,
    discrete_cdf,
    fit_singled_policy,
    singler_success_rate,
)
from repro.core.policies import SingleR


def heavy_log(n=4000, seed=0):
    rng = np.random.default_rng(seed)
    return rng.pareto(1.1, n) * 2.0 + 2.0


class TestDiscreteCdf:
    def test_strictly_less_than_semantics(self):
        r = np.array([1.0, 2.0, 3.0])
        assert discrete_cdf(r, 2.0) == pytest.approx(1 / 3)
        assert discrete_cdf(r, 2.5) == pytest.approx(2 / 3)
        assert discrete_cdf(r, 100.0) == 1.0
        assert discrete_cdf(r, 0.0) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            discrete_cdf(np.array([]), 1.0)


class TestSuccessRate:
    def test_matches_equation3_with_clamped_q(self):
        rx = np.sort(heavy_log())
        ry = rx
        t, d, B = 30.0, 5.0, 0.1
        px = discrete_cdf(rx, t)
        surv = 1 - discrete_cdf(rx, d)
        q = min(1.0, B / surv)
        expected = px + q * (1 - px) * discrete_cdf(ry, t - d)
        assert singler_success_rate(rx, ry, B, t, d) == pytest.approx(expected)

    def test_degenerate_surv_zero(self):
        rx = np.array([1.0, 2.0])
        # d beyond every sample: no request can be outstanding.
        assert singler_success_rate(rx, rx, 0.1, 5.0, 10.0) == 1.0


class TestComputeOptimalSingleR:
    def test_budget_respected_in_expectation(self):
        rx = heavy_log()
        fit = compute_optimal_singler(rx, rx, 0.95, 0.10)
        surv = float((rx >= fit.delay).mean())
        assert fit.prob * surv <= 0.10 * 1.05 + 1e-9

    def test_predicted_tail_beats_baseline(self):
        rx = heavy_log()
        fit = compute_optimal_singler(rx, rx, 0.95, 0.10)
        assert fit.predicted_tail <= fit.baseline_tail
        assert fit.predicted_reduction_ratio >= 1.0

    def test_predicted_success_meets_percentile(self):
        rx = heavy_log()
        fit = compute_optimal_singler(rx, rx, 0.95, 0.10)
        assert fit.predicted_success >= 0.95 - 1e-9

    def test_policy_property_roundtrip(self):
        rx = heavy_log()
        fit = compute_optimal_singler(rx, rx, 0.9, 0.2)
        assert isinstance(fit.policy, SingleR)
        assert fit.policy.delay == fit.delay

    def test_bigger_budget_never_worse(self):
        rx = heavy_log()
        t_small = compute_optimal_singler(rx, rx, 0.95, 0.05).predicted_tail
        t_big = compute_optimal_singler(rx, rx, 0.95, 0.30).predicted_tail
        assert t_big <= t_small + 1e-9

    def test_beats_singled_below_1_minus_k(self):
        # §2.4: with B < 1-k, SingleD cannot reduce the k-th percentile at
        # all; SingleR can.
        rx = heavy_log()
        k, B = 0.95, 0.03
        sr = compute_optimal_singler(rx, rx, k, B)
        sd = compute_optimal_singled(rx, rx, k, B)
        assert sr.predicted_tail < sd.predicted_tail
        assert sd.predicted_tail == pytest.approx(sd.baseline_tail, rel=0.05)

    def test_verified_against_brute_force(self):
        """The sweep must match an O(N^2) exhaustive search."""
        rng = np.random.default_rng(3)
        rx = np.sort(rng.lognormal(1.0, 1.0, 300))
        k, B = 0.9, 0.15
        best_t = np.inf
        i_max = max(int(np.ceil(rx.size * (1 - B))) - 1, 0)
        for d in rx[: i_max + 1]:
            for t in rx:
                if t < d:
                    continue
                if singler_success_rate(rx, rx, B, t, d) >= k and t < best_t:
                    best_t = t
        fit = compute_optimal_singler(rx, rx, k, B)
        assert fit.predicted_tail == pytest.approx(best_t)

    def test_distinct_reissue_distribution(self):
        # Reissues served by faster dedicated replicas: optimizer should
        # exploit the faster RY log.
        rx = heavy_log(seed=1)
        ry_fast = rx * 0.2
        fit_fast = compute_optimal_singler(rx, ry_fast, 0.95, 0.1)
        fit_same = compute_optimal_singler(rx, rx, 0.95, 0.1)
        assert fit_fast.predicted_tail <= fit_same.predicted_tail

    @pytest.mark.parametrize("pct,budget", [(0.0, 0.1), (1.0, 0.1), (0.9, 0.0), (0.9, 1.5)])
    def test_parameter_validation(self, pct, budget):
        rx = heavy_log(n=50)
        with pytest.raises(ValueError):
            compute_optimal_singler(rx, rx, pct, budget)

    def test_empty_logs_rejected(self):
        with pytest.raises(ValueError):
            compute_optimal_singler([], [1.0], 0.9, 0.1)


class TestSingleDFit:
    def test_delay_matches_budget_quantile(self):
        rx = heavy_log()
        pol = fit_singled_policy(rx, 0.1)
        surv = float((rx >= pol.delay).mean())
        assert surv <= 0.1 + 1 / rx.size + 1e-9

    def test_full_budget_reissues_immediately(self):
        rx = np.array([5.0, 1.0, 3.0])
        assert fit_singled_policy(rx, 1.0).delay == 1.0

    def test_compute_optimal_singled_is_q1(self):
        rx = heavy_log()
        fit = compute_optimal_singled(rx, rx, 0.95, 0.2)
        assert fit.prob == 1.0
        assert fit.predicted_success >= 0.95 - 1e-9


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    budget=st.floats(0.02, 0.9),
    pct=st.floats(0.6, 0.99),
)
def test_property_fit_invariants(seed, budget, pct):
    """For any log: the fit is feasible, on-budget, and no worse than the
    no-reissue baseline."""
    rng = np.random.default_rng(seed)
    rx = rng.lognormal(0.5, 1.2, 400)
    fit = compute_optimal_singler(rx, rx, pct, budget)
    assert 0.0 <= fit.prob <= 1.0
    assert fit.delay in rx
    assert fit.predicted_tail <= fit.baseline_tail + 1e-9
    surv = float((rx >= fit.delay).mean())
    assert fit.prob * surv <= budget + 1 / rx.size + 1e-9
    assert fit.predicted_success >= pct - 1e-9


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_sweep_matches_bruteforce_small(seed):
    rng = np.random.default_rng(seed)
    rx = np.sort(rng.exponential(5.0, 60))
    k, B = 0.8, 0.25
    best_t = np.inf
    i_max = max(int(np.ceil(rx.size * (1 - B))) - 1, 0)
    for d in rx[: i_max + 1]:
        for t in rx:
            if t < d:
                continue
            if singler_success_rate(rx, rx, B, t, d) >= k and t < best_t:
                best_t = t
    fit = compute_optimal_singler(rx, rx, k, B)
    assert fit.predicted_tail == pytest.approx(best_t)
