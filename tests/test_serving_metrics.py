"""Tests for the streaming serving telemetry (sketch accuracy, counters)."""

import numpy as np
import pytest

from repro.serving.hedge import RequestOutcome
from repro.serving.metrics import ServingMetrics


def outcome(
    latency=10.0,
    winner="primary",
    n_reissues=0,
    cancelled=0,
    deadline=False,
    pair=None,
):
    return RequestOutcome(
        query_id=0,
        latency_ms=latency,
        winner=winner,
        n_planned=1 if n_reissues else 0,
        n_reissues=n_reissues,
        cancelled_attempts=cancelled,
        deadline_exceeded=deadline,
        pair=pair,
    )


class TestSketchAccuracy:
    def test_tdigest_p99_within_5pct_of_exact(self, rng):
        # Acceptance criterion: live t-digest p99 vs exact np.quantile on
        # the same stream, within 5%.
        stream = rng.lognormal(3.0, 0.9, 20_000)
        m = ServingMetrics()
        for x in stream:
            m.record_latency(float(x))
        for p in (0.5, 0.99, 0.999):
            exact = float(np.quantile(stream, p))
            assert m.quantile(p) == pytest.approx(exact, rel=0.05)

    def test_p2_fast_path_tracks_tail(self, rng):
        stream = rng.lognormal(3.0, 0.9, 20_000)
        m = ServingMetrics()
        for x in stream:
            m.record_latency(float(x))
        exact = float(np.quantile(stream, 0.99))
        assert m.fast_quantile(0.99) == pytest.approx(exact, rel=0.15)

    def test_digest_merge_across_clients(self, rng):
        a, b = ServingMetrics(), ServingMetrics()
        sa = rng.lognormal(3.0, 0.5, 5_000)
        sb = rng.lognormal(4.0, 0.5, 5_000)
        for x in sa:
            a.record_latency(float(x))
        for x in sb:
            b.record_latency(float(x))
        merged = a.merge_digest(b)
        exact = float(np.quantile(np.concatenate([sa, sb]), 0.99))
        assert merged.quantile(0.99) == pytest.approx(exact, rel=0.05)


class TestCounters:
    def test_reissue_rate(self):
        m = ServingMetrics()
        for _ in range(8):
            m.record(outcome())
        for _ in range(2):
            m.record(outcome(n_reissues=1, winner="reissue", cancelled=1))
        assert m.completed == 10
        assert m.reissue_rate == pytest.approx(0.2)
        assert m.reissue_wins == 2
        assert m.cancelled_attempts == 2

    def test_policy_rate_excludes_probes(self):
        m = ServingMetrics()
        for _ in range(8):
            m.record(outcome())
        for _ in range(2):
            m.record(outcome(n_reissues=1, pair=(5.0, 7.0)))
        assert m.probes == 2
        assert m.reissue_rate == pytest.approx(0.2)
        assert m.policy_reissue_rate == pytest.approx(0.0)

    def test_deadline_counter(self):
        m = ServingMetrics()
        m.record(outcome(latency=20.0, winner="none", deadline=True))
        assert m.deadline_exceeded == 1

    def test_empty_rates_are_zero(self):
        m = ServingMetrics()
        assert m.reissue_rate == 0.0
        assert m.policy_reissue_rate == 0.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            ServingMetrics().record_latency(-1.0)

    def test_bad_percentile_rejected(self):
        with pytest.raises(ValueError):
            ServingMetrics(percentiles=(1.5,))


class TestSnapshot:
    def test_snapshot_fields_and_render(self, rng):
        m = ServingMetrics()
        for x in rng.lognormal(3.0, 0.5, 1_000):
            m.record_latency(float(x))
        m.record(outcome(n_reissues=1, winner="reissue", cancelled=1))
        snap = m.snapshot()
        assert snap.completed == 1_001
        assert 0.5 in snap.quantiles and 0.99 in snap.quantiles
        assert snap.policy_reissue_rate == m.policy_reissue_rate
        text = snap.render()
        assert "requests completed" in text
        assert "policy reissue rate" in text
        assert "p99" in text

    def test_empty_snapshot(self):
        snap = ServingMetrics().snapshot()
        assert snap.completed == 0
        assert snap.quantiles == {}
        assert "requests completed" in snap.render()


class TestCrossShardMerge:
    def test_merge_equals_single_combined_client(self, rng):
        # Two shards each serve half the traffic; merging their metrics
        # must look like one client that served it all — counters exact,
        # digest quantiles within the documented sketch tolerance (~1%
        # through p99, a few percent at p999).
        streams = (
            rng.lognormal(3.0, 0.6, 4_000),
            rng.lognormal(3.6, 0.8, 4_000),
        )
        shards = (ServingMetrics(), ServingMetrics())
        combined = ServingMetrics()
        for shard, stream in zip(shards, streams):
            for i, latency in enumerate(stream):
                out = outcome(
                    latency=float(latency),
                    winner="reissue" if i % 5 == 0 else "primary",
                    n_reissues=1 if i % 3 == 0 else 0,
                    cancelled=1 if i % 5 == 0 else 0,
                    deadline=i % 97 == 0,
                    pair=(1.0, 2.0) if i % 11 == 0 else None,
                )
                shard.record(out)
                combined.record(out)
        merged = shards[0].merge(shards[1])
        for counter in (
            "completed",
            "reissues_sent",
            "reissue_wins",
            "cancelled_attempts",
            "deadline_exceeded",
            "probes",
        ):
            assert getattr(merged, counter) == getattr(combined, counter)
        for p in (0.5, 0.9, 0.99):
            assert merged.quantile(p) == pytest.approx(
                combined.quantile(p), rel=0.01
            )
        assert merged.quantile(0.999) == pytest.approx(
            combined.quantile(0.999), rel=0.05
        )

    def test_merge_leaves_shards_untouched(self, rng):
        a, b = ServingMetrics(), ServingMetrics()
        for x in rng.lognormal(3.0, 0.5, 500):
            a.record_latency(float(x))
        b.record(outcome(n_reissues=1, winner="reissue", cancelled=1))
        before = (a.completed, a.quantile(0.5), b.reissue_wins)
        a.merge(b)
        assert (a.completed, a.quantile(0.5), b.reissue_wins) == before

    def test_merge_unions_watched_percentiles(self):
        a = ServingMetrics(percentiles=(0.5, 0.99))
        b = ServingMetrics(percentiles=(0.9,))
        merged = a.merge(b)
        for x in range(1, 200):
            merged.record_latency(float(x))
        # Fresh P2 sketches for the union warm up from post-merge traffic.
        for p in (0.5, 0.9, 0.99):
            assert merged.fast_quantile(p) > 0


# -- property-based merge contract (requires hypothesis) ---------------------

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False

#: Per-request outcome variants the generator cycles through; the kind
#: integer selects one, so every counter sees arbitrary mixes.
N_OUTCOME_KINDS = 10

MERGE_COUNTERS = (
    "completed",
    "reissues_sent",
    "reissue_wins",
    "cancelled_attempts",
    "deadline_exceeded",
    "probes",
)


def _outcome_of_kind(latency: float, kind: int):
    if kind == 0:  # cancellation win
        return outcome(
            latency=latency, winner="reissue", n_reissues=1, cancelled=1
        )
    if kind == 1:  # measurement probe
        return outcome(latency=latency, pair=(latency, latency + 1.0))
    if kind == 2:  # deadline miss
        return outcome(latency=latency, winner="none", deadline=True)
    if kind == 3:  # reissue sent, primary still won
        return outcome(latency=latency, n_reissues=1, cancelled=1)
    return outcome(latency=latency)


if HAVE_HYPOTHESIS:

    class TestMergePropertyBased:
        """For *arbitrary* shard splits of one outcome stream, merge()
        must keep counters exact and digest quantiles within the
        documented ~1% (p <= 0.99) / ~5% (p999) tolerances."""

        @given(
            items=st.lists(
                st.tuples(
                    st.floats(
                        min_value=0.0,
                        max_value=1e4,
                        allow_nan=False,
                        allow_infinity=False,
                    ),
                    st.integers(0, 3),  # owning shard
                    st.integers(0, N_OUTCOME_KINDS - 1),
                ),
                min_size=16,
                max_size=300,
            )
        )
        @settings(max_examples=40, deadline=None)
        def test_arbitrary_shard_split_matches_combined_stream(self, items):
            from functools import reduce

            shards = [ServingMetrics() for _ in range(4)]
            combined = ServingMetrics()
            for latency, shard_index, kind in items:
                out = _outcome_of_kind(latency, kind)
                shards[shard_index].record(out)
                combined.record(out)
            merged = reduce(lambda a, b: a.merge(b), shards)
            for counter in MERGE_COUNTERS:
                assert getattr(merged, counter) == getattr(
                    combined, counter
                ), counter
            for p in (0.5, 0.9, 0.99):
                assert merged.quantile(p) == pytest.approx(
                    combined.quantile(p), rel=0.01, abs=1e-9
                ), f"p{p}"
            assert merged.quantile(0.999) == pytest.approx(
                combined.quantile(0.999), rel=0.05, abs=1e-9
            )

        @given(
            latencies=st.lists(
                st.floats(
                    min_value=0.0,
                    max_value=1e4,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                min_size=2,
                max_size=200,
            )
        )
        @settings(max_examples=25, deadline=None)
        def test_merge_is_commutative_on_counters_and_tails(self, latencies):
            half = len(latencies) // 2
            a, b = ServingMetrics(), ServingMetrics()
            for x in latencies[:half]:
                a.record_latency(x)
            for x in latencies[half:]:
                b.record_latency(x)
            ab, ba = a.merge(b), b.merge(a)
            for counter in MERGE_COUNTERS:
                assert getattr(ab, counter) == getattr(ba, counter)
            for p in (0.5, 0.99):
                assert ab.quantile(p) == pytest.approx(
                    ba.quantile(p), rel=0.01, abs=1e-9
                )

else:  # pragma: no cover - exercised only without hypothesis

    @pytest.mark.skip(reason="hypothesis is not installed")
    def test_merge_property_based_requires_hypothesis():
        """Placeholder so the skipped property suite stays visible."""
