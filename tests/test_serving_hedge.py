"""Tests for the hedged request path: races, cancellation, admission.

These run real asyncio with a deterministic backend whose service times
are fixed, so winner identity and model latencies are exact while the
timer/cancellation machinery is exercised for real. Wall-clock margins
between the competing events are kept wide (≥ 5x) so scheduler jitter
cannot flip outcomes.
"""

import asyncio

import pytest

from repro.core.policies import (
    DoubleR,
    ImmediateReissue,
    NoReissue,
    SingleD,
    SingleR,
)
from repro.serving.backends import SimulatedBackend
from repro.serving.hedge import HedgedClient


class FixedBackend(SimulatedBackend):
    """Deterministic service times: one value for primaries, one for
    reissues."""

    def __init__(self, primary_ms, reissue_ms, time_scale=2e-4, rng=None):
        super().__init__(time_scale=time_scale, rng=rng)
        self.primary_ms = float(primary_ms)
        self.reissue_ms = float(reissue_ms)

    def service_time_ms(self, query_id, is_reissue):
        return self.reissue_ms if is_reissue else self.primary_ms


def run(coro):
    return asyncio.run(coro)


class TestRaceSemantics:
    def test_no_reissue_passthrough(self):
        be = FixedBackend(primary_ms=10.0, reissue_ms=1.0)
        client = HedgedClient(be, NoReissue(), rng=1)
        out = run(client.request(0))
        assert out.latency_ms == pytest.approx(10.0)
        assert out.winner == "primary"
        assert out.n_planned == 0 and out.n_reissues == 0
        assert be.started == 1

    def test_reissue_wins_and_primary_cancelled(self):
        n = 20
        be = FixedBackend(primary_ms=100.0, reissue_ms=1.0)
        client = HedgedClient(be, SingleD(5.0), rng=1)
        outs = run(client.serve(n))
        for out in outs:
            assert out.winner == "reissue"
            assert out.latency_ms == pytest.approx(6.0)  # d + reissue
            assert out.n_reissues == 1
            assert out.cancelled_attempts == 1
        # Every losing primary was cancelled and reaped.
        assert be.cancelled == n
        assert be.in_flight == 0
        assert client.metrics.reissue_wins == n
        assert client.metrics.cancelled_attempts == n

    def test_primary_wins_and_reissue_cancelled(self):
        n = 10
        be = FixedBackend(primary_ms=50.0, reissue_ms=100.0)
        client = HedgedClient(be, SingleD(5.0), rng=1)
        outs = run(client.serve(n))
        for out in outs:
            assert out.winner == "primary"
            assert out.latency_ms == pytest.approx(50.0)
            assert out.n_reissues == 1
            assert out.cancelled_attempts == 1
        assert be.cancelled == n
        assert be.in_flight == 0
        assert client.metrics.reissue_wins == 0

    def test_fast_primary_beats_timer_no_reissue_sent(self):
        be = FixedBackend(primary_ms=5.0, reissue_ms=1.0)
        client = HedgedClient(be, SingleD(50.0), rng=1)
        out = run(client.request(0))
        assert out.winner == "primary"
        assert out.n_planned == 1  # coin succeeded...
        assert out.n_reissues == 0  # ...but the primary beat the timer
        assert be.started == 1

    def test_model_latency_is_min_of_completions(self):
        # Reissue dispatched (timer 5 < primary 8) but primary still wins:
        # min(8, 5 + 10) = 8.
        be = FixedBackend(primary_ms=8.0, reissue_ms=10.0, time_scale=1e-3)
        client = HedgedClient(be, SingleD(5.0), rng=1)
        out = run(client.request(0))
        assert out.winner == "primary"
        assert out.latency_ms == pytest.approx(8.0)

    def test_zero_probability_stage_never_fires(self):
        be = FixedBackend(primary_ms=10.0, reissue_ms=1.0)
        client = HedgedClient(be, SingleR(1.0, 0.0), rng=1)
        outs = run(client.serve(10))
        assert all(o.n_planned == 0 and o.n_reissues == 0 for o in outs)

    def test_multi_stage_policy(self):
        # Stages at 5 and 15; reissue takes 30: completions at 35, 45 and
        # primary 200 — the first reissue wins at 35.
        be = FixedBackend(primary_ms=200.0, reissue_ms=30.0)
        client = HedgedClient(be, DoubleR(5.0, 1.0, 15.0, 1.0), rng=1)
        out = run(client.request(0))
        assert out.n_reissues == 2
        assert out.winner == "reissue"
        assert out.latency_ms == pytest.approx(35.0)
        assert out.cancelled_attempts == 2  # primary + the slower reissue
        assert be.in_flight == 0

    def test_immediate_reissue(self):
        be = FixedBackend(primary_ms=40.0, reissue_ms=4.0)
        client = HedgedClient(be, ImmediateReissue(), rng=1)
        out = run(client.request(0))
        assert out.winner == "reissue"
        assert out.latency_ms == pytest.approx(4.0)


class FlakyBackend(FixedBackend):
    """Raises on selected attempts instead of responding."""

    def __init__(self, *args, fail_primary=False, fail_reissue=False, **kw):
        super().__init__(*args, **kw)
        self.fail_primary = fail_primary
        self.fail_reissue = fail_reissue

    async def request(self, query_id, *, is_reissue=False):
        if (is_reissue and self.fail_reissue) or (
            not is_reissue and self.fail_primary
        ):
            await asyncio.sleep(0)
            raise ConnectionError("backend unavailable")
        return await super().request(query_id, is_reissue=is_reissue)


class TestAttemptFailures:
    def test_failed_reissue_does_not_kill_request(self):
        be = FlakyBackend(primary_ms=50.0, reissue_ms=1.0, fail_reissue=True)
        client = HedgedClient(be, SingleD(5.0), rng=1)
        out = run(client.request(0))
        assert out.winner == "primary"
        assert out.latency_ms == pytest.approx(50.0)
        assert be.in_flight == 0

    def test_failed_primary_survived_by_reissue(self):
        be = FlakyBackend(primary_ms=50.0, reissue_ms=10.0, fail_primary=True)
        client = HedgedClient(be, SingleD(5.0), rng=1)
        out = run(client.request(0))
        assert out.winner == "reissue"
        assert out.latency_ms == pytest.approx(15.0)  # d + reissue
        assert be.in_flight == 0

    def test_all_attempts_failed_raises_cleanly(self):
        be = FlakyBackend(
            primary_ms=50.0, reissue_ms=1.0,
            fail_primary=True, fail_reissue=True,
        )
        client = HedgedClient(be, SingleD(5.0), rng=1)
        with pytest.raises(ConnectionError):
            run(client.request(0))
        assert be.in_flight == 0
        assert client.in_flight == 0  # semaphore released

    def test_serve_finishes_siblings_when_one_request_fails(self):
        class OnePoisonedBackend(FixedBackend):
            async def request(self, query_id, *, is_reissue=False):
                if query_id == 3:
                    await asyncio.sleep(0)
                    raise ConnectionError("poisoned query")
                return await super().request(query_id, is_reissue=is_reissue)

        be = OnePoisonedBackend(primary_ms=10.0, reissue_ms=1.0)
        client = HedgedClient(be, NoReissue(), rng=1)
        with pytest.raises(ConnectionError):
            run(client.serve(10))
        # Every sibling ran to completion and was recorded — no
        # abandoned tasks, no lost telemetry.
        assert be.completed == 9
        assert client.metrics.completed == 9
        assert client.in_flight == 0

    def test_failed_probe_attempt_raises_without_leak(self):
        be = FlakyBackend(primary_ms=10.0, reissue_ms=4.0, fail_reissue=True)
        client = HedgedClient(
            be, NoReissue(), probe_fraction=0.999999, rng=1
        )
        with pytest.raises(ConnectionError):
            run(client.request(0))
        assert be.in_flight == 0


class TestDeadline:
    def test_deadline_cancels_everything(self):
        n = 5
        be = FixedBackend(primary_ms=500.0, reissue_ms=500.0)
        client = HedgedClient(be, SingleD(5.0), deadline_ms=20.0, rng=1)
        outs = run(client.serve(n))
        for out in outs:
            assert out.deadline_exceeded
            assert out.winner == "none"
            assert out.latency_ms == pytest.approx(20.0)
        assert be.completed == 0
        assert be.in_flight == 0
        assert be.cancelled == 2 * n  # primary + reissue per request
        assert client.metrics.deadline_exceeded == n

    def test_stage_beyond_deadline_not_dispatched(self):
        be = FixedBackend(primary_ms=500.0, reissue_ms=1.0)
        client = HedgedClient(be, SingleD(100.0), deadline_ms=20.0, rng=1)
        out = run(client.request(0))
        assert out.deadline_exceeded
        assert out.n_reissues == 0  # the d=100 stage never fired
        assert be.started == 1

    def test_fast_response_beats_deadline(self):
        be = FixedBackend(primary_ms=5.0, reissue_ms=1.0)
        client = HedgedClient(be, NoReissue(), deadline_ms=50.0, rng=1)
        out = run(client.request(0))
        assert not out.deadline_exceeded
        assert out.latency_ms == pytest.approx(5.0)

    def test_zero_time_scale_deadline_is_inert(self):
        # At time_scale=0 a wall-clock deadline is meaningless (every
        # model duration collapses to ~zero wall time); it must be a
        # no-op, not an instant expiry that cancels every request.
        def serve(deadline_ms):
            be = FixedBackend(
                primary_ms=100.0, reissue_ms=1.0, time_scale=0.0
            )
            client = HedgedClient(
                be, SingleD(5.0), deadline_ms=deadline_ms, rng=1
            )
            return run(client.serve(20)), be

        with_deadline, be1 = serve(1.0)
        without_deadline, be2 = serve(None)
        assert all(not o.deadline_exceeded for o in with_deadline)
        assert [o.latency_ms for o in with_deadline] == [
            o.latency_ms for o in without_deadline
        ]
        assert be1.completed == be2.completed

    def test_zero_time_scale_disables_stage_timers(self):
        # With instant wall timers a huge delay would still dispatch a
        # reissue on every coin success, mispricing the spend as ~q; at
        # scale 0 hedging timers are off entirely.
        be = FixedBackend(
            primary_ms=100.0, reissue_ms=1.0, time_scale=0.0
        )
        client = HedgedClient(be, SingleD(10_000.0), rng=1)
        outs = run(client.serve(20))
        assert sum(o.n_reissues for o in outs) == 0
        assert client.metrics.reissue_rate == 0.0

    def test_invalid_deadline_rejected(self):
        be = FixedBackend(primary_ms=5.0, reissue_ms=1.0)
        with pytest.raises(ValueError):
            HedgedClient(be, NoReissue(), deadline_ms=0.0)


class TestAdmissionControl:
    def test_concurrency_never_exceeded(self):
        limit = 4
        be = FixedBackend(primary_ms=20.0, reissue_ms=20.0)
        client = HedgedClient(be, NoReissue(), concurrency=limit, rng=1)
        run(client.serve(32))
        assert client.peak_in_flight == limit  # saturated but capped
        assert client.in_flight == 0
        # Backend attempts are bounded by limit * attempts-per-request.
        assert be.peak_in_flight <= limit

    def test_concurrency_capped_with_hedging(self):
        limit = 3
        be = FixedBackend(primary_ms=50.0, reissue_ms=50.0)
        client = HedgedClient(be, ImmediateReissue(), concurrency=limit, rng=1)
        run(client.serve(12))
        assert client.peak_in_flight <= limit
        assert be.peak_in_flight <= 2 * limit  # primary + duplicate each

    def test_invalid_concurrency_rejected(self):
        be = FixedBackend(primary_ms=5.0, reissue_ms=1.0)
        with pytest.raises(ValueError):
            HedgedClient(be, NoReissue(), concurrency=0)


class TestProbes:
    def test_probe_runs_both_to_completion(self):
        be = FixedBackend(primary_ms=10.0, reissue_ms=4.0)
        client = HedgedClient(
            be, NoReissue(), probe_fraction=0.999999, rng=1
        )
        out = run(client.request(0))
        assert out.pair == (10.0, 4.0)
        assert out.latency_ms == pytest.approx(4.0)
        assert out.winner == "reissue"
        assert out.cancelled_attempts == 0
        assert be.completed == 2 and be.cancelled == 0
        assert client.metrics.probes == 1
        # Nothing was cancelled, so this is not a cancellation win.
        assert client.metrics.reissue_wins == 0

    def test_probe_missing_deadline_is_counted(self):
        # Probes run to completion but still account against the SLA.
        be = FixedBackend(primary_ms=50.0, reissue_ms=40.0)
        client = HedgedClient(
            be, NoReissue(), deadline_ms=20.0, probe_fraction=0.999999, rng=1
        )
        out = run(client.request(0))
        assert out.pair == (50.0, 40.0)  # fully observed regardless
        assert out.deadline_exceeded
        assert out.latency_ms == pytest.approx(20.0)
        assert out.winner == "none"  # a miss has no cancellation win
        assert client.metrics.deadline_exceeded == 1
        assert client.metrics.reissue_wins == 0

    def test_probe_fraction_validated(self):
        be = FixedBackend(primary_ms=5.0, reissue_ms=1.0)
        with pytest.raises(ValueError):
            HedgedClient(be, NoReissue(), probe_fraction=1.0)


class TestServe:
    def test_serve_returns_outcomes_in_order(self):
        be = FixedBackend(primary_ms=2.0, reissue_ms=1.0)
        client = HedgedClient(be, NoReissue(), rng=1)
        outs = run(client.serve(8, start_id=100))
        assert [o.query_id for o in outs] == list(range(100, 108))

    def test_poisson_arrivals(self):
        be = FixedBackend(primary_ms=2.0, reissue_ms=1.0, time_scale=1e-5)
        client = HedgedClient(be, NoReissue(), rng=1)
        outs = run(client.serve(20, interarrival_ms=1.0, poisson=True))
        assert len(outs) == 20

    def test_policy_swap_between_requests(self):
        be = FixedBackend(primary_ms=50.0, reissue_ms=1.0)
        client = HedgedClient(be, NoReissue(), rng=1)
        out1 = run(client.request(0))
        client.policy = SingleD(5.0)
        out2 = run(client.request(1))
        assert out1.n_reissues == 0
        assert out2.n_reissues == 1

    def test_policy_setter_rejected_while_autotuned(self):
        from repro.serving import AutoTuner

        be = FixedBackend(primary_ms=10.0, reissue_ms=1.0)
        client = HedgedClient(
            be, tuner=AutoTuner(percentile=0.99, budget=0.1), rng=1
        )
        with pytest.raises(RuntimeError):
            client.policy = SingleD(5.0)
        client.tuner = None  # detaching unlocks manual pinning
        client.policy = SingleD(5.0)
        assert client.policy == SingleD(5.0)
