"""Tests for the §5.1 workload models, arrivals, calibration, metrics."""

import numpy as np
import pytest

from repro.core.policies import ImmediateReissue, NoReissue, SingleR
from repro.distributions import Exponential, Pareto, Uniform
from repro.simulation.arrivals import PoissonArrivals
from repro.simulation.calibrate import (
    arrival_rate_for_utilization,
    calibrate_arrival_rate,
)
from repro.simulation.metrics import (
    LatencySummary,
    inverse_cdf_series,
    reduction_ratio,
)
from repro.simulation.workloads import (
    InfiniteServerSystem,
    QueueingSystem,
    ServiceModel,
    correlated_workload,
    independent_workload,
    queueing_workload,
)


class TestServiceModel:
    def test_independent_reissue(self):
        m = ServiceModel(Uniform(1.0, 2.0), correlation=0.0)
        x = np.full(1000, 10.0)
        y = m.sample_reissue(x, np.random.default_rng(0))
        assert y.max() <= 2.0  # no dependence on x

    def test_correlated_reissue_formula(self):
        m = ServiceModel(Uniform(1.0, 1.0 + 1e-12), correlation=0.5)
        x = np.array([10.0, 20.0])
        y = m.sample_reissue(x, np.random.default_rng(0))
        assert y == pytest.approx(0.5 * x + 1.0, rel=1e-6)

    def test_negative_correlation_rejected(self):
        with pytest.raises(ValueError):
            ServiceModel(Uniform(0, 1), correlation=-0.5)


class TestInfiniteServer:
    def test_latency_equals_service_without_reissue(self):
        sys_ = independent_workload(5000)
        run = sys_.run(NoReissue(), np.random.default_rng(0))
        assert np.array_equal(run.latencies, run.primary_response_times)
        assert run.utilization == 0.0

    def test_immediate_reissue_is_min_of_two(self):
        sys_ = independent_workload(50_000)
        run = sys_.run(ImmediateReissue(), np.random.default_rng(1))
        base = sys_.run(NoReissue(), np.random.default_rng(1))
        # min of two i.i.d. heavy-tailed draws has a much lighter P99
        assert run.tail(0.99) < base.tail(0.99) * 0.7
        assert run.reissue_rate == pytest.approx(1.0)

    def test_reissue_only_fires_if_outstanding(self):
        sys_ = InfiniteServerSystem(ServiceModel(Uniform(0.1, 0.2)), 10_000)
        run = sys_.run(SingleR(0.5, 1.0), np.random.default_rng(0))
        assert run.reissue_rate == 0.0  # every query done before d=0.5

    def test_correlated_workload_reissues_less_effective(self):
        ind = independent_workload(50_000)
        cor = correlated_workload(50_000, ratio=0.9)
        pol = SingleR(2.5, 1.0)
        r_ind = ind.run(pol, np.random.default_rng(3))
        r_cor = cor.run(pol, np.random.default_rng(3))
        base_i = ind.run(NoReissue(), np.random.default_rng(3)).tail(0.95)
        base_c = cor.run(NoReissue(), np.random.default_rng(3)).tail(0.95)
        gain_i = base_i / r_ind.tail(0.95)
        gain_c = base_c / r_cor.tail(0.95)
        assert gain_i > gain_c  # §5.4: correlation shrinks the benefit

    def test_rejects_zero_queries(self):
        with pytest.raises(ValueError):
            InfiniteServerSystem(ServiceModel(Uniform(0, 1)), 0)


class TestQueueingSystem:
    def test_utilization_parameter_respected(self):
        sys_ = queueing_workload(n_queries=20_000, utilization=0.5)
        run = sys_.run(NoReissue(), np.random.default_rng(2))
        assert run.utilization == pytest.approx(0.5, abs=0.12)

    def test_queueing_inflates_tail_over_service(self):
        svc = ServiceModel(Exponential(1.0))
        queued = QueueingSystem(svc, utilization=0.7, n_servers=4, n_queries=20_000)
        run = queued.run(NoReissue(), np.random.default_rng(0))
        # P99 latency well above the P99 of Exp(1) service (~4.6)
        assert run.tail(0.99) > 6.0

    def test_invalid_utilization(self):
        with pytest.raises(ValueError):
            queueing_workload(utilization=0.0)

    def test_balancer_and_discipline_forwarded(self):
        sys_ = queueing_workload(
            n_queries=2000, discipline="prioritized-lifo", balancer="min-of-2"
        )
        run = sys_.run(SingleR(0.1, 0.5), np.random.default_rng(1))
        assert run.n_queries > 0


class TestArrivals:
    def test_poisson_rate(self):
        arr = PoissonArrivals(2.0).generate(100_000, np.random.default_rng(0))
        assert np.all(np.diff(arr) >= 0)
        rate = (arr.size - 1) / (arr[-1] - arr[0])
        assert rate == pytest.approx(2.0, rel=0.05)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)


class TestCalibration:
    def test_rate_formula(self):
        assert arrival_rate_for_utilization(0.5, 10, 2.0) == pytest.approx(2.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            arrival_rate_for_utilization(0.0, 10, 2.0)
        with pytest.raises(ValueError):
            arrival_rate_for_utilization(0.5, 0, 2.0)
        with pytest.raises(ValueError):
            arrival_rate_for_utilization(0.5, 10, 0.0)

    def test_feedback_calibration_converges(self):
        # util is linear in rate with slope 0.2 up to saturation.
        rate = calibrate_arrival_rate(
            lambda r: min(0.2 * r, 0.99), target_utilization=0.5, initial_rate=1.0
        )
        assert rate == pytest.approx(2.5, rel=0.05)


class TestMetrics:
    def test_summary_from_run(self):
        sys_ = independent_workload(5000)
        run = sys_.run(NoReissue(), np.random.default_rng(0))
        s = LatencySummary.from_run(run)
        assert s.n == 5000
        assert s.p50 <= s.p95 <= s.p99 <= s.p999 <= s.max
        assert "p99=" in s.row()

    def test_reduction_ratio(self):
        assert reduction_ratio(100.0, 50.0) == 2.0
        assert reduction_ratio(100.0, 0.0) == float("inf")

    def test_inverse_cdf_series_monotone(self):
        vals = np.random.default_rng(0).exponential(1.0, 1000)
        probs = np.linspace(0.1, 0.99, 10)
        q = inverse_cdf_series(vals, probs)
        assert np.all(np.diff(q) >= 0)

    def test_inverse_cdf_empty_rejected(self):
        with pytest.raises(ValueError):
            inverse_cdf_series([], [0.5])

    def test_remediation_rate_definition(self):
        from repro.core.interfaces import RunResult

        run = RunResult(
            latencies=np.array([1.0]),
            primary_response_times=np.array([1.0]),
            reissue_pair_x=np.array([10.0, 10.0, 1.0]),
            reissue_pair_y=np.array([1.0, 9.0, 1.0]),
            reissue_rate=0.3,
        )
        # t=5, d=2: needed = x>5 (two), useful = y<3 (first only)
        assert run.remediation_rate(5.0, 2.0) == pytest.approx(1 / 3)

    def test_remediation_rate_no_pairs(self):
        from repro.core.interfaces import RunResult

        run = RunResult(
            latencies=np.array([1.0]),
            primary_response_times=np.array([1.0]),
            reissue_pair_x=np.empty(0),
            reissue_pair_y=np.empty(0),
            reissue_rate=0.0,
        )
        assert run.remediation_rate(5.0, 2.0) == 0.0
