"""Tests for the ``repro store`` CLI: pack, info, sort, head."""

import json

import numpy as np
import pytest

from repro.io.tracelog import TraceLog, read_trace, write_trace
from repro.main import main
from repro.store import EmpiricalStore, TraceReader, TraceWriter


@pytest.fixture
def csv_trace(tmp_path, rng):
    path = tmp_path / "trace.csv"
    write_trace(
        path,
        TraceLog(
            primary=rng.lognormal(2.0, 0.6, 500),
            pair_x=rng.exponential(5.0, 40),
            pair_y=rng.exponential(5.0, 40),
        ),
    )
    return path


class TestPack:
    def test_pack_round_trips_the_log(self, tmp_path, csv_trace, capsys):
        store = tmp_path / "trace.store"
        rc = main(["store", "pack", str(csv_trace), str(store)])
        assert rc == 0
        assert "packed" in capsys.readouterr().out
        log = read_trace(csv_trace)
        reader = TraceReader(store)
        np.testing.assert_array_equal(
            reader.read_segment("primary"), log.primary
        )
        pairs = reader.read_segment("pairs")
        np.testing.assert_array_equal(pairs[:, 0], log.pair_x)
        np.testing.assert_array_equal(pairs[:, 1], log.pair_y)

    def test_pack_sort_yields_fit_ready_store(self, tmp_path, csv_trace):
        store = tmp_path / "trace.store"
        rc = main(["store", "pack", str(csv_trace), str(store), "--sort"])
        assert rc == 0
        reader = TraceReader(store)
        assert reader.sorted
        # No leftover .unsorted temp from the two-step pack.
        assert not (tmp_path / "trace.store.unsorted").exists()
        EmpiricalStore(reader)  # opens without StoreNotSortedError

    def test_pack_missing_csv_is_exit_2(self, tmp_path, capsys):
        rc = main(
            ["store", "pack", str(tmp_path / "no.csv"), str(tmp_path / "x")]
        )
        assert rc == 2
        assert capsys.readouterr().err.strip()


class TestInfo:
    def test_info_json_schema(self, tmp_path, csv_trace, capsys):
        store = tmp_path / "t.store"
        main(["store", "pack", str(csv_trace), str(store), "--sort"])
        capsys.readouterr()
        rc = main(["store", "info", str(store), "--json", "--verify"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == "repro-store"
        assert doc["version"] == 1
        assert doc["sorted"] is True
        assert doc["total_records"] == 540
        names = {seg["name"] for seg in doc["segments"]}
        assert names == {"primary", "pairs"}
        assert doc["blocks_verified"] == sum(
            seg["blocks"] for seg in doc["segments"]
        )

    def test_info_table_mentions_segments(self, tmp_path, csv_trace, capsys):
        store = tmp_path / "t.store"
        main(["store", "pack", str(csv_trace), str(store)])
        capsys.readouterr()
        rc = main(["store", "info", str(store)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "primary" in out and "pairs" in out

    def test_info_corrupt_store_is_exit_2(self, tmp_path, csv_trace, capsys):
        store = tmp_path / "t.store"
        main(["store", "pack", str(csv_trace), str(store)])
        data = bytearray(store.read_bytes())
        data[200] ^= 0xFF
        store.write_bytes(bytes(data))
        capsys.readouterr()
        rc = main(["store", "info", str(store), "--verify"])
        assert rc == 2
        assert "checksum" in capsys.readouterr().err


class TestSort:
    def test_sort_command(self, tmp_path, rng, capsys):
        src = tmp_path / "u.store"
        samples = rng.exponential(5.0, 1000)
        with TraceWriter(src, block_records=64) as w:
            w.append(samples)
        dst = tmp_path / "s.store"
        rc = main(["store", "sort", str(src), str(dst)])
        assert rc == 0
        assert "sorted" in capsys.readouterr().out
        np.testing.assert_array_equal(
            TraceReader(dst).read_segment("primary"), np.sort(samples)
        )


class TestHead:
    def test_head_prints_first_records(self, tmp_path, rng, capsys):
        store = tmp_path / "t.store"
        samples = rng.exponential(5.0, 100)
        with TraceWriter(store, block_records=16) as w:
            w.append(samples)
        rc = main(["store", "head", str(store), "-n", "5"])
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 5
        assert [float(x) for x in lines] == [float(v) for v in samples[:5]]


class TestOptimizeFromStore:
    def test_optimize_scenario_with_store_trace(
        self, tmp_path, rng, monkeypatch, capsys
    ):
        # The bundled large-trace-fit scenario names a relative store
        # path; build a small one and fit against it end to end.
        store = tmp_path / "traces" / "large-trace.store"
        store.parent.mkdir()
        with TraceWriter(store, block_records=256, sorted=True) as w:
            w.append(np.sort(rng.lognormal(2.0, 0.6, 5000)))
        monkeypatch.chdir(tmp_path)
        rc = main(["optimize", "large-trace-fit", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["store"] is True
        assert doc["n_samples"] == 5000
        assert doc["predicted_tail"] <= doc["baseline_tail"]
