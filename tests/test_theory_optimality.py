"""Numerical verification of the paper's theorems (§3).

Theorem 3.1/3.2: in the static independent model, for a given budget B
and percentile k, no DoubleR/MultipleR policy achieves a lower k-th
percentile tail latency than the optimal SingleR policy.

We verify by grid search over closed-form distributions: the analytic
completion CDF (Eq. 3 generalized) gives each policy's exact tail, so the
comparison is free of sampling noise.
"""

import itertools

import numpy as np
import pytest

from repro.core.analytic import optimal_singler
from repro.core.policies import DoubleR, MultipleR, SingleR
from repro.distributions import Exponential, LogNormal, Pareto, Weibull

PERCENTILE = 95.0
K = PERCENTILE / 100.0


def best_singler_tail(dist, budget, d_grid):
    """Exact optimal SingleR tail over a delay grid (q from Eq. 4)."""
    best = np.inf
    for d in d_grid:
        surv = 1.0 - float(dist.cdf(d))
        if surv < budget:  # Eq. 5: cannot spend the budget
            continue
        q = min(1.0, budget / surv)
        t = SingleR(d, q).tail_latency(PERCENTILE, dist, dist)
        best = min(best, t)
    return best


def feasible_doubler_policies(dist, budget, d_grid, q_grid):
    """DoubleR policies whose Eq.-15 budget is within the cap."""
    for d1, d2 in itertools.combinations_with_replacement(d_grid, 2):
        for q1, q2 in itertools.product(q_grid, repeat=2):
            pol = DoubleR(d1, q1, d2, q2)
            if pol.expected_budget(dist, dist) <= budget + 1e-9:
                yield pol


@pytest.mark.parametrize(
    "dist",
    [
        Exponential(0.5),
        Pareto(1.1, 2.0),
        LogNormal(1.0, 1.0),
        Weibull(0.7, 2.0),
    ],
    ids=["exp", "pareto", "lognormal", "weibull"],
)
@pytest.mark.parametrize("budget", [0.05, 0.15, 0.3])
def test_theorem31_no_doubler_beats_optimal_singler(dist, budget):
    hi = float(dist.quantile(0.999))
    d_grid = np.unique(
        np.concatenate([[0.0], np.array(dist.quantile(np.linspace(0.2, 1 - budget, 12)))])
    )
    q_grid = np.linspace(0.1, 1.0, 5)
    t_single = best_singler_tail(dist, budget, d_grid)
    for pol in feasible_doubler_policies(dist, budget, d_grid[::2], q_grid):
        t_double = pol.tail_latency(PERCENTILE, dist, dist, t_hi=hi * 2)
        assert t_double >= t_single - 1e-6 * max(t_single, 1.0), (
            f"DoubleR {pol} beats optimal SingleR: {t_double} < {t_single}"
        )


def test_theorem32_triple_reissue_no_better():
    dist = Pareto(1.1, 2.0)
    budget = 0.2
    d_grid = np.array(dist.quantile(np.linspace(0.3, 0.8, 5)))
    q_grid = np.array([0.03, 0.07, 0.15, 0.3])
    t_single = best_singler_tail(
        dist, budget, np.array(dist.quantile(np.linspace(0.2, 0.8, 16)))
    )
    count = 0
    for ds in itertools.combinations_with_replacement(d_grid, 3):
        for qs in itertools.product(q_grid, repeat=3):
            pol = MultipleR(list(zip(ds, qs)))
            if pol.expected_budget(dist, dist) > budget + 1e-9:
                continue
            count += 1
            t_multi = pol.tail_latency(PERCENTILE, dist, dist)
            assert t_multi >= t_single - 1e-6 * t_single
    assert count > 20  # the comparison actually exercised the family


def test_equal_budget_singler_matches_singled_at_dprime():
    # At d' where Pr(X > d') = B, SingleR(d', 1) IS the SingleD policy.
    dist = Exponential(1.0)
    B = 0.1
    d_prime = float(dist.quantile(1 - B))
    sr = SingleR(d_prime, 1.0)
    assert sr.expected_budget(dist, dist) == pytest.approx(B, rel=1e-6)


def test_section24_singled_cannot_help_below_1mk():
    # §2.4: SingleD with B < 1-k cannot reduce the k-th percentile.
    dist = Pareto(1.1, 2.0)
    B = 0.02  # < 1 - 0.95
    d = float(dist.quantile(1 - B))  # the only budget-feasible delay
    base = float(dist.quantile(K))
    from repro.core.policies import SingleD

    t = SingleD(d).tail_latency(PERCENTILE, dist, dist)
    assert t == pytest.approx(base, rel=1e-6)


def test_singler_helps_below_1mk():
    dist = Pareto(1.1, 2.0)
    B = 0.02
    base = float(dist.quantile(K))
    t = best_singler_tail(
        dist, B, np.array(dist.quantile(np.linspace(0.1, 0.97, 30)))
    )
    assert t < base * 0.95  # strictly meaningful reduction


class TestAnalyticOptimum:
    def test_analytic_matches_grid_search(self):
        dist = Exponential(0.7)
        B = 0.15
        fit = optimal_singler(dist, dist, percentile=K, budget=B)
        grid = best_singler_tail(
            dist, B, np.array(dist.quantile(np.linspace(0.01, 1 - B, 400)))
        )
        assert fit.tail == pytest.approx(grid, rel=5e-3)

    def test_analytic_budget_feasible(self):
        dist = LogNormal(1.0, 1.0)
        fit = optimal_singler(dist, dist, percentile=0.95, budget=0.1)
        assert fit.policy.expected_budget(dist, dist) <= 0.1 + 1e-6
