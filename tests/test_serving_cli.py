"""Smoke tests for the ``repro-serve`` console entry point."""

import pytest

from repro.serving import cli


def test_fixed_policy_run(capsys):
    rc = cli.main(
        [
            "--backend", "synthetic", "--policy", "singler",
            "--delay", "40", "--prob", "0.5",
            "--requests", "120", "--time-scale", "1e-5",
            "--report-every", "60",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "== final ==" in out
    assert "requests completed" in out
    assert "peak concurrency" in out


def test_auto_policy_run(capsys):
    rc = cli.main(
        [
            "--backend", "drifting", "--policy", "auto",
            "--requests", "150", "--time-scale", "1e-5",
            "--report-every", "150",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "policy refits" in out


def test_none_policy_never_reissues(capsys):
    rc = cli.main(
        [
            "--backend", "synthetic", "--policy", "none",
            "--probe-fraction", "0",
            "--requests", "80", "--time-scale", "1e-5",
            "--report-every", "80",
        ]
    )
    assert rc == 0
    assert "reissues sent                 0" in capsys.readouterr().out


def test_zero_requests_rejected(capsys):
    assert cli.main(["--requests", "0"]) == 2


def test_zero_report_every_rejected(capsys):
    # report-every 0 would make serve_stream's chunk size 0 and spin.
    assert cli.main(["--requests", "10", "--report-every", "0"]) == 2


def test_small_batch_size_warns_about_dead_drift_path(capsys):
    rc = cli.main(
        [
            "--backend", "synthetic", "--policy", "auto",
            "--batch-size", "200",
            "--requests", "40", "--time-scale", "0",
            "--report-every", "40",
        ]
    )
    assert rc == 0
    assert "drift-triggered refits will never fire" in capsys.readouterr().err


def test_default_batch_size_enables_drift_detection():
    # DriftDetector ignores batches under min_samples (500); the CLI
    # default must not silently disable the drift path.
    from repro.core.online import DriftDetector

    default = cli.build_parser().get_default("batch_size")
    assert default >= DriftDetector().min_samples
    rc = cli.main(
        [
            "--backend", "synthetic", "--policy", "auto",
            "--requests", "40", "--time-scale", "0",
            "--report-every", "40",
        ]
    )
    assert rc == 0
