"""Smoke tests for the ``repro-serve`` console entry point."""

import pytest

from repro.serving import cli


def test_fixed_policy_run(capsys):
    rc = cli.main(
        [
            "--backend", "synthetic", "--policy", "singler",
            "--delay", "40", "--prob", "0.5",
            "--requests", "120", "--time-scale", "1e-5",
            "--report-every", "60",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "== final ==" in out
    assert "requests completed" in out
    assert "peak concurrency" in out


def test_auto_policy_run(capsys):
    rc = cli.main(
        [
            "--backend", "drifting", "--policy", "auto",
            "--requests", "150", "--time-scale", "1e-5",
            "--report-every", "150",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "policy refits" in out


def test_none_policy_never_reissues(capsys):
    rc = cli.main(
        [
            "--backend", "synthetic", "--policy", "none",
            "--probe-fraction", "0",
            "--requests", "80", "--time-scale", "1e-5",
            "--report-every", "80",
        ]
    )
    assert rc == 0
    assert "reissues sent                 0" in capsys.readouterr().out


def test_zero_requests_rejected(capsys):
    assert cli.main(["--requests", "0"]) == 2


def test_zero_report_every_rejected(capsys):
    # report-every 0 would make serve_stream's chunk size 0 and spin.
    assert cli.main(["--requests", "10", "--report-every", "0"]) == 2


def test_small_batch_size_warns_about_dead_drift_path(capsys):
    rc = cli.main(
        [
            "--backend", "synthetic", "--policy", "auto",
            "--batch-size", "200",
            "--requests", "40", "--time-scale", "0",
            "--report-every", "40",
        ]
    )
    assert rc == 0
    assert "drift-triggered refits will never fire" in capsys.readouterr().err


def test_default_batch_size_enables_drift_detection():
    # DriftDetector ignores batches under min_samples (500); the CLI
    # default must not silently disable the drift path.
    from repro.core.online import DriftDetector

    default = cli.build_parser().get_default("batch_size")
    assert default >= DriftDetector().min_samples
    rc = cli.main(
        [
            "--backend", "synthetic", "--policy", "auto",
            "--requests", "40", "--time-scale", "0",
            "--report-every", "40",
        ]
    )
    assert rc == 0


class TestFlagNamingErrors:
    """Programmatic callers bypass argparse choices; the build helpers
    must still name the offending flag and list the valid values."""

    def parsed(self, **overrides):
        args = cli.build_parser().parse_args(
            ["--requests", "10", "--time-scale", "0", "--report-every", "10"]
        )
        for key, value in overrides.items():
            setattr(args, key, value)
        return args

    def test_unknown_backend_names_flag(self, capsys):
        rc = cli.run_serve_command(self.parsed(backend="bogus"))
        assert rc == 2
        err = capsys.readouterr().err
        assert "--backend" in err and "'bogus'" in err
        for name in cli.BACKENDS:
            assert name in err

    def test_unknown_policy_names_flag(self, capsys):
        rc = cli.run_serve_command(self.parsed(policy="bogus"))
        assert rc == 2
        err = capsys.readouterr().err
        assert "--policy" in err and "'bogus'" in err
        for name in cli.POLICIES:
            assert name in err

    def test_build_backend_raises_named_valueerror(self):
        import numpy as np

        with pytest.raises(ValueError, match="--backend"):
            cli.build_backend(
                self.parsed(backend="nope"), np.random.default_rng(0)
            )

    def test_build_policy_raises_named_valueerror(self):
        with pytest.raises(ValueError, match="--policy"):
            cli.build_policy_and_tuner(self.parsed(policy="nope"))
