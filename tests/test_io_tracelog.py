"""Tests for the response-time trace log format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interfaces import RunResult
from repro.io import TraceLog, read_trace, write_trace


def make_trace(n=10, m=4, seed=0):
    rng = np.random.default_rng(seed)
    return TraceLog(
        primary=rng.exponential(5.0, n),
        pair_x=rng.exponential(5.0, m),
        pair_y=rng.exponential(5.0, m),
    )


class TestTraceLog:
    def test_counts(self):
        t = make_trace(10, 4)
        assert t.n_primary == 10 and t.n_pairs == 4

    def test_mismatched_pairs_rejected(self):
        with pytest.raises(ValueError):
            TraceLog(primary=[1.0], pair_x=[1.0, 2.0], pair_y=[1.0])

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            TraceLog(primary=[-1.0])

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            TraceLog(primary=np.zeros((2, 2)))

    def test_from_run(self):
        run = RunResult(
            latencies=np.array([1.0]),
            primary_response_times=np.array([1.0, 2.0]),
            reissue_pair_x=np.array([3.0]),
            reissue_pair_y=np.array([0.5]),
            reissue_rate=0.5,
        )
        t = TraceLog.from_run(run)
        assert t.n_primary == 2 and t.n_pairs == 1

    def test_reissue_log_falls_back_to_primary(self):
        t = TraceLog(primary=[1.0, 2.0])
        assert np.array_equal(t.reissue_log(), t.primary)
        t2 = make_trace()
        assert np.array_equal(t2.reissue_log(), t2.pair_y)


class TestRoundTrip:
    def test_roundtrip_exact(self, tmp_path):
        t = make_trace(50, 20)
        p = tmp_path / "trace.csv"
        write_trace(p, t)
        back = read_trace(p)
        assert np.array_equal(back.primary, t.primary)
        assert np.array_equal(back.pair_x, t.pair_x)
        assert np.array_equal(back.pair_y, t.pair_y)

    def test_no_tmp_file_left(self, tmp_path):
        p = tmp_path / "trace.csv"
        write_trace(p, make_trace())
        assert list(tmp_path.iterdir()) == [p]

    def test_missing_header_rejected(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("kind,x,y\nprimary,1.0,\n")
        with pytest.raises(ValueError, match="header"):
            read_trace(p)

    def test_malformed_row_rejected(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("# repro-trace v1\nkind,x,y\nprimary,abc,\n")
        with pytest.raises(ValueError, match="bad.csv:3"):
            read_trace(p)

    def test_unknown_kind_rejected(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("# repro-trace v1\nkind,x,y\nweird,1.0,2.0\n")
        with pytest.raises(ValueError, match="weird"):
            read_trace(p)

    def test_primary_with_y_rejected(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("# repro-trace v1\nkind,x,y\nprimary,1.0,2.0\n")
        with pytest.raises(ValueError):
            read_trace(p)

    def test_comments_and_blanks_skipped(self, tmp_path):
        p = tmp_path / "ok.csv"
        p.write_text(
            "# repro-trace v1\nkind,x,y\n\n# a comment\nprimary,1.5,\n"
        )
        t = read_trace(p)
        assert t.n_primary == 1 and t.primary[0] == 1.5


@settings(max_examples=25, deadline=None)
@given(
    primary=st.lists(st.floats(0, 1e9), min_size=1, max_size=50),
    pairs=st.lists(
        st.tuples(st.floats(0, 1e9), st.floats(0, 1e9)), max_size=20
    ),
)
def test_property_roundtrip(tmp_path_factory, primary, pairs):
    t = TraceLog(
        primary=np.array(primary),
        pair_x=np.array([a for a, _ in pairs]),
        pair_y=np.array([b for _, b in pairs]),
    )
    p = tmp_path_factory.mktemp("traces") / "t.csv"
    write_trace(p, t)
    back = read_trace(p)
    assert np.array_equal(back.primary, t.primary)
    assert np.array_equal(back.pair_y, t.pair_y)
