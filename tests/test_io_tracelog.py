"""Tests for the response-time trace log format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interfaces import RunResult
from repro.io import TraceLog, read_trace, write_trace


def make_trace(n=10, m=4, seed=0):
    rng = np.random.default_rng(seed)
    return TraceLog(
        primary=rng.exponential(5.0, n),
        pair_x=rng.exponential(5.0, m),
        pair_y=rng.exponential(5.0, m),
    )


class TestTraceLog:
    def test_counts(self):
        t = make_trace(10, 4)
        assert t.n_primary == 10 and t.n_pairs == 4

    def test_mismatched_pairs_rejected(self):
        with pytest.raises(ValueError):
            TraceLog(primary=[1.0], pair_x=[1.0, 2.0], pair_y=[1.0])

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            TraceLog(primary=[-1.0])

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            TraceLog(primary=np.zeros((2, 2)))

    def test_from_run(self):
        run = RunResult(
            latencies=np.array([1.0]),
            primary_response_times=np.array([1.0, 2.0]),
            reissue_pair_x=np.array([3.0]),
            reissue_pair_y=np.array([0.5]),
            reissue_rate=0.5,
        )
        t = TraceLog.from_run(run)
        assert t.n_primary == 2 and t.n_pairs == 1

    def test_reissue_log_falls_back_to_primary(self):
        t = TraceLog(primary=[1.0, 2.0])
        assert np.array_equal(t.reissue_log(), t.primary)
        t2 = make_trace()
        assert np.array_equal(t2.reissue_log(), t2.pair_y)


class TestRoundTrip:
    def test_roundtrip_exact(self, tmp_path):
        t = make_trace(50, 20)
        p = tmp_path / "trace.csv"
        write_trace(p, t)
        back = read_trace(p)
        assert np.array_equal(back.primary, t.primary)
        assert np.array_equal(back.pair_x, t.pair_x)
        assert np.array_equal(back.pair_y, t.pair_y)

    def test_no_tmp_file_left(self, tmp_path):
        p = tmp_path / "trace.csv"
        write_trace(p, make_trace())
        assert list(tmp_path.iterdir()) == [p]

    def test_missing_header_rejected(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("kind,x,y\nprimary,1.0,\n")
        with pytest.raises(ValueError, match="header"):
            read_trace(p)

    def test_malformed_row_rejected(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("# repro-trace v1\nkind,x,y\nprimary,abc,\n")
        with pytest.raises(ValueError, match="bad.csv:3"):
            read_trace(p)

    def test_unknown_kind_rejected(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("# repro-trace v1\nkind,x,y\nweird,1.0,2.0\n")
        with pytest.raises(ValueError, match="weird"):
            read_trace(p)

    def test_primary_with_y_rejected(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("# repro-trace v1\nkind,x,y\nprimary,1.0,2.0\n")
        with pytest.raises(ValueError):
            read_trace(p)

    def test_comments_and_blanks_skipped(self, tmp_path):
        p = tmp_path / "ok.csv"
        p.write_text(
            "# repro-trace v1\nkind,x,y\n\n# a comment\nprimary,1.5,\n"
        )
        t = read_trace(p)
        assert t.n_primary == 1 and t.primary[0] == 1.5


@settings(max_examples=25, deadline=None)
@given(
    primary=st.lists(st.floats(0, 1e9), min_size=1, max_size=50),
    pairs=st.lists(
        st.tuples(st.floats(0, 1e9), st.floats(0, 1e9)), max_size=20
    ),
)
def test_property_roundtrip(tmp_path_factory, primary, pairs):
    t = TraceLog(
        primary=np.array(primary),
        pair_x=np.array([a for a, _ in pairs]),
        pair_y=np.array([b for _, b in pairs]),
    )
    p = tmp_path_factory.mktemp("traces") / "t.csv"
    write_trace(p, t)
    back = read_trace(p)
    assert np.array_equal(back.primary, t.primary)
    assert np.array_equal(back.pair_y, t.pair_y)


class TestIterTrace:
    """Chunked streaming reads: same rows, bounded memory, same errors."""

    def test_chunks_concatenate_to_read_trace(self, tmp_path):
        from repro.io.tracelog import iter_trace, write_trace

        t = make_trace(n=100, m=30)
        p = tmp_path / "t.csv"
        write_trace(p, t)
        chunks = list(iter_trace(p, chunk=7))
        assert len(chunks) > 1
        assert all(c.n_primary + c.n_pairs <= 7 for c in chunks)
        np.testing.assert_array_equal(
            np.concatenate([c.primary for c in chunks]), t.primary
        )
        np.testing.assert_array_equal(
            np.concatenate([c.pair_x for c in chunks]), t.pair_x
        )
        np.testing.assert_array_equal(
            np.concatenate([c.pair_y for c in chunks]), t.pair_y
        )

    def test_malformed_row_error_carries_line_number(self, tmp_path):
        from repro.io.tracelog import iter_trace

        p = tmp_path / "bad.csv"
        p.write_text(
            "# repro-trace v1\nkind,x,y\nprimary,1.0,\nprimary,1.0,2.0\n"
        )
        with pytest.raises(ValueError, match=rf"{p}:4: .*y empty"):
            list(iter_trace(p, chunk=2))
        with pytest.raises(ValueError, match=rf"{p}:4: .*y empty"):
            read_trace(p)

    def test_field_count_error_names_the_line(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("# repro-trace v1\nkind,x,y\npair,1.0\n")
        with pytest.raises(ValueError, match=rf"{p}:3: expected 3 fields"):
            read_trace(p)

    def test_unknown_kind_names_the_line(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("# repro-trace v1\nkind,x,y\nbogus,1.0,\n")
        with pytest.raises(ValueError, match=rf"{p}:3: unknown row kind"):
            read_trace(p)

    def test_header_errors_name_lines_1_and_2(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("not a header\n")
        with pytest.raises(ValueError, match=rf"{p}:1: "):
            read_trace(p)
        p.write_text("# repro-trace v1\nwrong,columns\n")
        with pytest.raises(ValueError, match=rf"{p}:2: "):
            read_trace(p)


class TestStoreBridge:
    """CSV <-> packed-binary store conversion is lossless."""

    def test_csv_store_csv_byte_identical(self, tmp_path):
        from repro.io.tracelog import store_to_trace, trace_to_store

        t = make_trace(n=200, m=60, seed=3)
        src = tmp_path / "t.csv"
        write_trace(src, t)
        store = tmp_path / "t.store"
        trace_to_store(src, store, block_records=32)
        back = tmp_path / "back.csv"
        store_to_trace(store, back)
        assert back.read_bytes() == src.read_bytes()

    def test_read_trace_transparently_opens_stores(self, tmp_path):
        from repro.io.tracelog import trace_to_store

        t = make_trace(n=50, m=10, seed=5)
        src = tmp_path / "t.csv"
        write_trace(src, t)
        store = tmp_path / "t.store"
        trace_to_store(src, store)
        back = read_trace(store)
        np.testing.assert_array_equal(back.primary, t.primary)
        np.testing.assert_array_equal(back.pair_x, t.pair_x)
        np.testing.assert_array_equal(back.pair_y, t.pair_y)

    def test_log_store_round_trip_bit_exact(self, tmp_path):
        from repro.io.tracelog import log_to_store, store_to_log

        t = make_trace(n=500, m=80, seed=9)
        store = tmp_path / "t.store"
        log_to_store(t, store, block_records=64)
        back = store_to_log(store)
        np.testing.assert_array_equal(back.primary, t.primary)
        np.testing.assert_array_equal(back.pair_x, t.pair_x)
        np.testing.assert_array_equal(back.pair_y, t.pair_y)

    def test_is_store_path_sniffs_magic(self, tmp_path):
        from repro.io.tracelog import is_store_path, log_to_store

        store = tmp_path / "t.store"
        log_to_store(make_trace(), store)
        assert is_store_path(store)
        csv = tmp_path / "t.csv"
        write_trace(csv, make_trace())
        assert not is_store_path(csv)
        assert not is_store_path(tmp_path / "missing.csv")
