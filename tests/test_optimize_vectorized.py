"""Bit-for-bit equivalence of the vectorized Figure-1 sweeps.

Mirrors ``tests/test_fastsim_equivalence.py``: the legacy scalar sweeps
in ``repro.core.optimizer`` are retained as the reference, and the
vectorized reimplementations in ``repro.optimize.vectorized`` must
return *identical* ``SingleRFit`` dataclasses — every field, every bit
— across a randomized matrix of sample sets, percentiles, and budgets,
plus the adversarial shapes (duplicates, tiny logs, constant logs)
where index arithmetic earns its keep.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimizer import (
    compute_optimal_singled,
    compute_optimal_singler,
)
from repro.optimize.vectorized import (
    compute_optimal_singled_vectorized,
    compute_optimal_singler_vectorized,
)

PERCENTILES = (0.5, 0.9, 0.95, 0.99)
BUDGETS = (0.01, 0.05, 0.2, 0.5, 1.0)


def sample_logs(kind: str, n: int, seed: int):
    rng = np.random.default_rng(seed)
    if kind == "pareto":
        rx = rng.pareto(1.1, n) * 2.0 + 2.0
    elif kind == "lognormal":
        rx = rng.lognormal(1.0, 1.0, n)
    elif kind == "discrete":
        # Heavy duplication: first-occurrence arithmetic must agree.
        rx = rng.integers(1, max(2, n // 8 + 2), n).astype(np.float64)
    else:  # constant
        rx = np.full(n, 3.0)
    ry = rng.lognormal(0.5, 1.0, n) if seed % 2 else rx
    return rx, ry


class TestSingleREquivalence:
    @pytest.mark.parametrize("kind", ["pareto", "lognormal", "discrete", "constant"])
    @pytest.mark.parametrize("n", [1, 2, 3, 17, 256, 4096])
    def test_matrix_bit_for_bit(self, kind, n):
        for seed in (0, 1):
            rx, ry = sample_logs(kind, n, seed)
            for k in PERCENTILES:
                for budget in BUDGETS:
                    legacy = compute_optimal_singler(rx, ry, k, budget)
                    fast = compute_optimal_singler_vectorized(rx, ry, k, budget)
                    assert legacy == fast, (kind, n, seed, k, budget)

    @settings(max_examples=120, deadline=None)
    @given(
        data=st.data(),
        n=st.integers(min_value=1, max_value=400),
        k=st.sampled_from(PERCENTILES),
        budget=st.sampled_from(BUDGETS),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_randomized_bit_for_bit(self, data, n, k, budget, seed):
        rng = np.random.default_rng(seed)
        # Mix continuous and quantized values so near-ties at the
        # feasibility threshold are actually exercised.
        rx = rng.pareto(1.05, n) * 2.0 + 2.0
        if data.draw(st.booleans(), label="quantize"):
            rx = np.round(rx, 1)
        ry = rx if data.draw(st.booleans(), label="shared_ry") else (
            rng.lognormal(0.5, 1.0, n)
        )
        legacy = compute_optimal_singler(rx, ry, k, budget)
        fast = compute_optimal_singler_vectorized(rx, ry, k, budget)
        assert legacy == fast

    def test_input_validation_matches_legacy(self):
        rx = np.array([1.0, 2.0])
        for bad in (
            lambda f: f(np.empty(0), rx, 0.9, 0.1),
            lambda f: f(rx, np.empty(0), 0.9, 0.1),
            lambda f: f(rx, rx, 0.0, 0.1),
            lambda f: f(rx, rx, 1.0, 0.1),
            lambda f: f(rx, rx, 0.9, 0.0),
            lambda f: f(rx, rx, 0.9, 1.5),
        ):
            with pytest.raises(ValueError):
                bad(compute_optimal_singler)
            with pytest.raises(ValueError):
                bad(compute_optimal_singler_vectorized)


class TestSingleDEquivalence:
    @pytest.mark.parametrize("kind", ["pareto", "lognormal", "discrete", "constant"])
    @pytest.mark.parametrize("n", [1, 2, 3, 17, 256, 4096])
    def test_matrix_bit_for_bit(self, kind, n):
        for seed in (0, 1):
            rx, ry = sample_logs(kind, n, seed)
            for k in PERCENTILES:
                for budget in BUDGETS:
                    legacy = compute_optimal_singled(rx, ry, k, budget)
                    fast = compute_optimal_singled_vectorized(rx, ry, k, budget)
                    assert legacy == fast, (kind, n, seed, k, budget)

    @settings(max_examples=120, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=400),
        k=st.sampled_from(PERCENTILES),
        budget=st.sampled_from(BUDGETS),
        seed=st.integers(min_value=0, max_value=2**31),
        quantize=st.booleans(),
    )
    def test_randomized_bit_for_bit(self, n, k, budget, seed, quantize):
        rng = np.random.default_rng(seed)
        rx = rng.pareto(1.05, n) * 2.0 + 2.0
        if quantize:
            rx = np.round(rx, 1)
        ry = rng.lognormal(0.5, 1.0, n)
        legacy = compute_optimal_singled(rx, ry, k, budget)
        fast = compute_optimal_singled_vectorized(rx, ry, k, budget)
        assert legacy == fast


class TestScalarFallback:
    def test_sweep_trajectory_fallback_path(self, monkeypatch):
        """If the probe replay ever rejects the reconstructed trajectory,
        the vectorized entry point must fall back to the scalar sweep
        (same result, slower) rather than guess."""
        from repro.optimize import vectorized

        monkeypatch.setattr(
            vectorized, "_sweep_trajectory", lambda *a, **k: None
        )
        rng = np.random.default_rng(3)
        rx = rng.pareto(1.1, 500) * 2.0 + 2.0
        legacy = compute_optimal_singler(rx, rx, 0.95, 0.1)
        assert vectorized.compute_optimal_singler_vectorized(
            rx, rx, 0.95, 0.1
        ) == legacy
