"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A deterministic generator; tests share the seed for reproducibility."""
    return np.random.default_rng(12345)


@pytest.fixture
def rng_factory():
    """Factory for independent deterministic generators."""

    def make(seed: int = 0):
        return np.random.default_rng(seed)

    return make
