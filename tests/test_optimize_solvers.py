"""The repro.optimize solver layer: registry, solvers, strategies, CLI."""

import json

import numpy as np
import pytest

from repro.core.budget_search import find_optimal_budget
from repro.core.correlated import compute_optimal_singler_correlated
from repro.core.online import OnlinePolicyController
from repro.core.optimizer import (
    compute_optimal_singled,
    compute_optimal_singler,
    fit_singled_policy,
)
from repro.core.policies import NoReissue, SingleD, SingleR
from repro.distributions import Pareto
from repro.distributions.base import as_rng
from repro.fastsim import run_policy_batch
from repro.main import main
from repro.optimize import (
    FitRequest,
    SOLVERS,
    fit_singler_grid,
    fit_singler_protocol,
    solve,
    solver_names,
)
from repro.scenarios.registry import build_system


def heavy_log(n=3000, seed=0):
    rng = np.random.default_rng(seed)
    return rng.pareto(1.1, n) * 2.0 + 2.0


def quick_system(n_queries=1500, **kw):
    return build_system("queueing", n_queries=n_queries, utilization=0.3, **kw)


class TestRegistry:
    def test_all_solvers_registered(self):
        assert solver_names() == [
            "analytic",
            "correlated",
            "empirical",
            "online",
            "optimal-budget",
            "simulated",
            "sla-budget",
        ]

    def test_unknown_solver_is_a_named_error(self):
        with pytest.raises(KeyError, match="unknown solver 'genetic'"):
            solve(FitRequest(rx=heavy_log()), "genetic")

    def test_entries_carry_summaries(self):
        for entry in SOLVERS.entries():
            assert entry.summary


class TestFitRequest:
    def test_validation(self):
        with pytest.raises(ValueError, match="percentile"):
            FitRequest(percentile=1.0)
        with pytest.raises(ValueError, match="budget"):
            FitRequest(budget=0.0)
        with pytest.raises(ValueError, match="family"):
            FitRequest(family="triple-r")
        with pytest.raises(ValueError, match="sla_ms"):
            FitRequest(sla_ms=-1.0)
        with pytest.raises(ValueError, match="trials"):
            FitRequest(trials=0)

    def test_missing_evidence_names_the_solver(self):
        with pytest.raises(ValueError, match="'empirical'"):
            solve(FitRequest(), "empirical")
        with pytest.raises(ValueError, match="closed-form"):
            solve(FitRequest(rx=heavy_log()), "analytic")
        with pytest.raises(ValueError, match="'simulated'"):
            solve(FitRequest(rx=heavy_log()), "simulated")

    def test_with_copies(self):
        req = FitRequest(rx=heavy_log(), budget=0.1)
        assert req.with_(budget=0.2).budget == 0.2
        assert req.with_(budget=0.2).percentile == req.percentile


class TestEmpiricalSolver:
    def test_singler_matches_legacy_sweep(self):
        rx = heavy_log()
        result = solve(
            FitRequest(percentile=0.95, budget=0.1, rx=rx), "empirical"
        )
        legacy = compute_optimal_singler(rx, rx, 0.95, 0.1)
        assert result.fit == legacy
        assert result.policy == legacy.policy
        assert result.solver == "empirical"

    def test_singled_family(self):
        rx = heavy_log()
        result = solve(
            FitRequest(percentile=0.95, budget=0.1, rx=rx, family="single-d"),
            "empirical",
        )
        legacy = compute_optimal_singled(rx, rx, 0.95, 0.1)
        assert result.fit == legacy
        assert result.policy == SingleD(legacy.delay)
        # The SingleD family's delay is the Eq.-2 budget-matched delay.
        assert result.policy == fit_singled_policy(rx, 0.1)

    def test_samples_from_system_when_no_log_given(self):
        system = quick_system()
        result = solve(
            FitRequest(percentile=0.95, budget=0.1, system=system, seed=7),
            "empirical",
        )
        rx = system.run(NoReissue(), as_rng(7)).primary_response_times
        assert result.fit == compute_optimal_singler(rx, rx, 0.95, 0.1)


class TestCorrelatedSolver:
    def test_matches_legacy_from_pairs(self):
        rng = np.random.default_rng(5)
        rx = heavy_log(seed=5)
        pair_x = rng.choice(rx, 400)
        pair_y = 0.5 * pair_x + rng.pareto(1.1, 400) * 2.0 + 2.0
        result = solve(
            FitRequest(
                percentile=0.95, budget=0.1, rx=rx,
                pair_x=pair_x, pair_y=pair_y,
            ),
            "correlated",
        )
        legacy = compute_optimal_singler_correlated(
            rx, pair_x, pair_y, 0.95, 0.1
        )
        assert result.fit == legacy
        assert result.meta["n_pairs"] == 400

    def test_probes_system_when_no_pairs_given(self):
        system = build_system("correlated", n_queries=3000)
        result = solve(
            FitRequest(percentile=0.95, budget=0.1, system=system, seed=3),
            "correlated",
        )
        assert isinstance(result.policy, SingleR)
        assert result.meta["n_pairs"] > 0

    def test_singled_family_uses_budget_matched_delay(self):
        """SingleD couples d to the budget (Eq. 2); the SingleR d* was
        fitted jointly with q < 1 and would overspend at q = 1."""
        rng = np.random.default_rng(6)
        rx = heavy_log(seed=6)
        px = rng.choice(rx, 300)
        py = 0.5 * px + rng.pareto(1.1, 300) * 2.0 + 2.0
        result = solve(
            FitRequest(
                percentile=0.95, budget=0.05, rx=rx,
                pair_x=px, pair_y=py, family="single-d",
            ),
            "correlated",
        )
        assert result.policy == fit_singled_policy(rx, 0.05)
        # And the Eq.-2 delay honours the budget in expectation.
        d = result.policy.stages[0][0]
        assert float((rx >= d).mean()) <= 0.05 + 1.0 / rx.size
        # The SingleR-optimum diagnostics must not masquerade as a
        # prediction for this policy.
        assert result.fit is None
        assert "note" in result.meta


class TestAnalyticSolver:
    def test_families(self):
        primary = Pareto(1.1, 2.0)
        req = FitRequest(
            percentile=0.9, budget=0.2, primary=primary,
            options={"grid": 32},
        )
        sr = solve(req, "analytic")
        sd = solve(req.with_(family="single-d"), "analytic")
        assert isinstance(sr.policy, SingleR)
        assert isinstance(sd.policy, SingleD)
        # Optimal SingleR never loses to SingleD (§3 optimality).
        assert sr.fit.tail <= sd.fit.tail + 1e-9


class TestSimulatedSolver:
    def test_single_fit_matches_protocol_helper(self):
        system = quick_system()
        result = solve(
            FitRequest(
                percentile=0.95, budget=0.1, system=system,
                seed=42, trials=3,
            ),
            "simulated",
        )
        direct = fit_singler_protocol(
            system, 0.95, 0.1, trials=3, rng=as_rng(42)
        )
        assert result.policy == direct

    def test_singled_family(self):
        system = quick_system()
        result = solve(
            FitRequest(
                percentile=0.95, budget=0.1, system=system,
                seed=42, trials=2, family="single-d",
            ),
            "simulated",
        )
        assert isinstance(result.policy, SingleD)

    def test_grid_bit_for_bit_with_serial_fits(self):
        """The batched lockstep grid == one serial fit per budget."""
        system = quick_system()
        budgets = (0.05, 0.1, 0.25)
        result = solve(
            FitRequest(
                percentile=0.95, budget=0.1, system=system,
                seed=42, trials=3, budgets=budgets,
            ),
            "simulated",
        )
        serial = [
            fit_singler_protocol(system, 0.95, b, trials=3, rng=as_rng(42))
            for b in budgets
        ]
        assert list(result.policies) == serial
        assert result.policy == serial[1]  # nearest the declared budget

    def test_grid_rejects_stateful_seeds(self):
        system = quick_system(n_queries=1000)
        with pytest.raises(ValueError, match="stateless seed"):
            fit_singler_grid(
                system, 0.95, [0.05], trials=1,
                seed=np.random.default_rng(0),
            )
        with pytest.raises(ValueError, match="stateless seed"):
            fit_singler_grid(system, 0.95, [0.05], trials=1, seed=None)

    def test_grid_helper_matches_serial_on_batchless_system(self):
        system = build_system("independent", n_queries=2000)
        budgets = [0.05, 0.2]
        grid = fit_singler_grid(system, 0.95, budgets, trials=2, seed=11)
        serial = [
            fit_singler_protocol(system, 0.95, b, trials=2, rng=as_rng(11))
            for b in budgets
        ]
        assert grid == serial


class TestRunPolicyBatch:
    def test_batch_config_route_is_bit_for_bit(self):
        system = quick_system()
        assert system.batch_config is system.config
        policies = [NoReissue(), SingleR(5.0, 0.5)]
        batch = run_policy_batch(
            system, [(p, as_rng(9)) for p in policies]
        )
        serial = [system.run(p, as_rng(9)) for p in policies]
        for b, s in zip(batch, serial):
            np.testing.assert_array_equal(b.latencies, s.latencies)
            assert b.reissue_rate == s.reissue_rate

    def test_fallback_route_for_plain_systems(self):
        system = build_system("independent", n_queries=1000)
        batch = run_policy_batch(system, [(NoReissue(), as_rng(1))])
        serial = system.run(NoReissue(), as_rng(1))
        np.testing.assert_array_equal(batch[0].latencies, serial.latencies)


class TestOnlineSolver:
    def test_empirical_branch_matches_controller_rule(self):
        rx = heavy_log(seed=9)
        result = solve(
            FitRequest(percentile=0.95, budget=0.1, rx=rx), "online"
        )
        assert result.meta["mode"] == "empirical"
        assert result.fit == compute_optimal_singler(rx, rx, 0.95, 0.1)

    def test_correlated_branch_kicks_in_with_enough_pairs(self):
        rng = np.random.default_rng(2)
        rx = heavy_log(seed=2)
        px = rng.choice(rx, 200)
        py = 0.5 * px + rng.pareto(1.1, 200) * 2.0 + 2.0
        result = solve(
            FitRequest(
                percentile=0.95, budget=0.1, rx=rx, pair_x=px, pair_y=py
            ),
            "online",
        )
        assert result.meta["mode"] == "correlated"
        assert result.fit == compute_optimal_singler_correlated(
            rx, px, py, 0.95, 0.1
        )

    def test_online_is_singler_only(self):
        with pytest.raises(ValueError, match="SingleR family only"):
            solve(
                FitRequest(rx=heavy_log(), family="single-d"), "online"
            )

    def test_samples_from_system_when_no_window_given(self):
        """`repro optimize <scenario> --solver online` has no window:
        a no-reissue baseline run of the system stands in for it."""
        system = quick_system()
        result = solve(
            FitRequest(percentile=0.95, budget=0.1, system=system, seed=7),
            "online",
        )
        assert result.meta["mode"] == "empirical"
        rx = system.run(NoReissue(), as_rng(7)).primary_response_times
        assert result.fit == compute_optimal_singler(rx, rx, 0.95, 0.1)

    def test_controller_refits_route_through_the_solver(self):
        """The sliding-window controller's refit is the online solver."""
        ctrl = OnlinePolicyController(
            percentile=0.95, budget=0.1, refit_interval=1000, window=10_000
        )
        ctrl.observe(heavy_log(n=1200, seed=4))
        assert ctrl.n_refits == 1
        fit = ctrl.events[-1].fit
        expected = solve(
            FitRequest(
                percentile=0.95, budget=0.1,
                rx=heavy_log(n=1200, seed=4),
                pair_x=np.empty(0), pair_y=np.empty(0),
            ),
            "online",
        ).fit
        assert fit == expected


class TestBudgetStrategies:
    def test_optimal_budget_solver(self):
        system = quick_system(n_queries=1200)
        result = solve(
            FitRequest(
                percentile=0.95, budget=0.1, system=system,
                seed=42, seeds=(101,), trials=2,
                options={"max_trials": 4, "initial_step": 0.05},
            ),
            "optimal-budget",
        )
        assert result.search is not None
        assert 0.0 <= result.search.best_budget <= 1.0
        assert result.search.evaluations <= len(result.search.trials)
        if result.search.best_budget > 0:
            assert isinstance(result.policy, SingleR)
            # The result's policy is the one the winning probe fitted
            # (read from the probe memo, not re-fitted after the fact).
            assert result.policy == fit_singler_protocol(
                system, 0.95, result.search.best_budget,
                trials=2, rng=as_rng(42),
            )
        else:
            assert isinstance(result.policy, NoReissue)

    def test_sla_budget_requires_target(self):
        with pytest.raises(ValueError, match="sla_ms"):
            solve(
                FitRequest(system=quick_system(n_queries=1000), seeds=(101,)),
                "sla-budget",
            )

    def test_sla_budget_solver(self):
        system = quick_system(n_queries=1200)
        result = solve(
            FitRequest(
                percentile=0.95, budget=0.1, system=system,
                seed=42, seeds=(101,), trials=2, sla_ms=1e9,
                options={"max_trials": 3},
            ),
            "sla-budget",
        )
        # An absurdly loose SLA is met with zero redundancy.
        assert result.search.best_budget == 0.0
        assert isinstance(result.policy, NoReissue)


class TestBudgetDedupe:
    def test_repeated_candidates_hit_the_cache(self):
        calls = []

        def evaluate(budget):
            calls.append(budget)
            return 100.0 - budget  # always improves: pure expansion

        result = find_optimal_budget(evaluate, max_trials=6)
        assert result.evaluations == len(calls)
        assert len(set(calls)) == len(calls)  # never re-ran a budget

    def test_dedupe_serves_revisits_from_cache(self):
        calls = []

        def evaluate(budget):
            calls.append(round(budget, 6))
            return abs(budget - 0.02) * 1000 + 50.0

        deduped = find_optimal_budget(evaluate, max_trials=12)
        assert len(set(calls)) == len(calls)
        assert deduped.evaluations == len(calls)
        # The trial trace still records every probe (cached or not).
        assert len(deduped.trials) >= deduped.evaluations

    def test_dedupe_off_restores_per_probe_calls(self):
        calls = []

        def evaluate(budget):
            calls.append(budget)
            return 100.0 - budget

        result = find_optimal_budget(evaluate, max_trials=5, dedupe=False)
        assert result.evaluations == len(calls)
        # Without the cache, every non-baseline trial is a fresh call.
        assert len(calls) == len([t for t in result.trials if t.trial > 0]) + 1


class TestOptimizeCli:
    def test_bundled_scenario_default_solver(self, capsys):
        assert main(["optimize", "queueing-fit-singler"]) == 0
        out = capsys.readouterr().out
        assert "empirical solver" in out
        assert "policy" in out

    def test_json_output(self, capsys):
        assert main(["optimize", "queueing-fit-singler", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "queueing-fit-singler"
        assert payload["solver"] == "empirical"
        assert payload["policy"]["kind"] == "single-r"
        assert "predicted_tail" in payload

    def test_solver_override_simulated(self, capsys):
        assert main(
            ["optimize", "queueing-fit-singler", "--solver", "simulated",
             "--trials", "2", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["solver"] == "simulated"

    def test_unknown_solver_errors(self, capsys):
        assert main(
            ["optimize", "queueing-fit-singler", "--solver", "genetic"]
        ) == 2
        assert "unknown solver" in capsys.readouterr().err

    def test_analytic_needs_workload_distribution(self, capsys):
        assert main(
            ["optimize", "queueing-fit-singler", "--solver", "analytic"]
        ) == 2
        assert "closed-form" in capsys.readouterr().err

    def test_analytic_with_workload_scenario(self, tmp_path, capsys):
        sc = tmp_path / "analytic.toml"
        sc.write_text(
            'name = "analytic-fit"\n\n[system]\nkind = "independent"\n\n'
            '[workload]\n[workload.service]\nkind = "pareto"\n'
            "shape = 1.1\nmode = 2.0\n\n"
            '[policy]\nkind = "none"\n\n'
            '[objective]\npercentile = 0.9\nbudget = 0.2\n'
            'solve = "analytic"\n'
        )
        assert main(["optimize", str(sc), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["solver"] == "analytic"
        assert payload["policy"]["kind"] == "single-r"

    def test_scenario_solve_field_validated(self, tmp_path, capsys):
        sc = tmp_path / "bad.toml"
        sc.write_text(
            'name = "bad-solve"\n\n[system]\nkind = "queueing"\n\n'
            '[policy]\nkind = "none"\n\n'
            '[objective]\nsolve = "astrology"\n'
        )
        assert main(["scenarios", "validate", str(sc)]) == 1
        assert "astrology" in capsys.readouterr().out

    def test_missing_scenario_errors(self, capsys):
        assert main(["optimize", "no-such-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err
