"""Tests for on-line adaptation under time-varying load (§4.4)."""

import numpy as np
import pytest

from repro.core.online import (
    DriftDetector,
    OnlinePolicyController,
    SlidingWindowLog,
)


def lognormal_batch(rng, n=1000, mu=1.0, sigma=1.0):
    return rng.lognormal(mu, sigma, n)


class TestSlidingWindowLog:
    def test_append_and_len(self):
        log = SlidingWindowLog(capacity=1000)
        log.extend([1.0, 2.0, 3.0])
        assert len(log) == 3 and log.total_seen == 3

    def test_capacity_evicts_oldest(self):
        log = SlidingWindowLog(capacity=100)
        log.extend(np.arange(150, dtype=float))
        assert len(log) == 100
        assert log.primary()[0] == 50.0  # oldest 50 evicted
        assert log.total_seen == 150

    def test_pairs_tracked(self):
        log = SlidingWindowLog(capacity=1000)
        log.extend([1.0], pair_x=[5.0, 6.0], pair_y=[1.0, 2.0])
        px, py = log.pairs()
        assert log.n_pairs == 2
        assert np.array_equal(px, [5.0, 6.0])

    def test_pair_length_mismatch(self):
        log = SlidingWindowLog(capacity=1000)
        with pytest.raises(ValueError):
            log.extend([1.0], pair_x=[1.0], pair_y=[1.0, 2.0])

    def test_negative_rejected(self):
        log = SlidingWindowLog(capacity=1000)
        with pytest.raises(ValueError):
            log.extend([-1.0])

    def test_percentile(self):
        log = SlidingWindowLog(capacity=1000)
        log.extend(np.arange(1, 101, dtype=float))
        assert log.percentile(0.95) == 96.0

    def test_percentile_empty(self):
        with pytest.raises(ValueError):
            SlidingWindowLog(capacity=1000).percentile(0.5)

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ValueError):
            SlidingWindowLog(capacity=10)


class TestDriftDetector:
    def test_no_drift_same_distribution(self):
        rng = np.random.default_rng(0)
        det = DriftDetector(threshold=0.12)
        assert not det.update(lognormal_batch(rng))
        for _ in range(5):
            assert not det.update(lognormal_batch(rng))

    def test_detects_scale_shift(self):
        rng = np.random.default_rng(1)
        det = DriftDetector(threshold=0.12)
        det.update(lognormal_batch(rng))
        shifted = lognormal_batch(rng) * 2.0
        assert det.update(shifted)
        assert det.last_statistic > 0.12

    def test_reanchors_after_drift(self):
        rng = np.random.default_rng(2)
        det = DriftDetector(threshold=0.12)
        det.update(lognormal_batch(rng))
        det.update(lognormal_batch(rng) * 3.0)  # drift, re-anchor
        # subsequent batches from the *new* regime are not drift
        assert not det.update(lognormal_batch(rng) * 3.0)

    def test_small_samples_ignored(self):
        det = DriftDetector(min_samples=500)
        assert not det.update(np.ones(50))
        assert not det.update(np.ones(50) * 100)

    def test_reset(self):
        rng = np.random.default_rng(3)
        det = DriftDetector()
        det.update(lognormal_batch(rng))
        det.reset()
        assert not det.update(lognormal_batch(rng) * 10)  # becomes reference

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            DriftDetector(threshold=0.0)


class TestOnlineController:
    def test_validation(self):
        with pytest.raises(ValueError):
            OnlinePolicyController(percentile=0.0, budget=0.1)
        with pytest.raises(ValueError):
            OnlinePolicyController(percentile=0.95, budget=0.1, refit_interval=10)

    def test_starts_with_immediate_policy(self):
        c = OnlinePolicyController(percentile=0.95, budget=0.1)
        assert c.policy.delay == 0.0 and c.policy.prob == 0.1

    def test_batch_refit_after_interval(self):
        rng = np.random.default_rng(4)
        c = OnlinePolicyController(
            percentile=0.95, budget=0.1, refit_interval=2000
        )
        c.observe(lognormal_batch(rng, 1500))
        assert c.n_refits == 0
        c.observe(lognormal_batch(rng, 1500))
        assert c.n_refits == 1
        assert c.events[0].reason == "batch"
        assert c.policy.delay > 0.0

    def test_budget_respected_in_fit(self):
        rng = np.random.default_rng(5)
        c = OnlinePolicyController(
            percentile=0.95, budget=0.1, refit_interval=1000
        )
        for _ in range(4):
            c.observe(lognormal_batch(rng, 1000))
        rx = c.log.primary()
        surv = float((rx >= c.policy.delay).mean())
        assert c.policy.prob * surv <= 0.1 * 1.1 + 1 / rx.size

    def test_drift_triggers_undamped_refit(self):
        rng = np.random.default_rng(6)
        c = OnlinePolicyController(
            percentile=0.95, budget=0.1, refit_interval=100_000,
            learning_rate=0.1,
        )
        for _ in range(3):
            c.observe(lognormal_batch(rng, 1000))
        # 4x latency regression: drift fires long before the interval.
        c.observe(lognormal_batch(rng, 1000) * 4.0)
        drift_events = [e for e in c.events if e.reason == "drift"]
        assert drift_events, "drift refit did not fire"
        # Undamped: the new delay lands on the fit, not 10% toward it.
        assert c.policy.delay == pytest.approx(drift_events[-1].fit.delay)

    def test_damped_refit_moves_partially(self):
        rng = np.random.default_rng(7)
        c = OnlinePolicyController(
            percentile=0.95, budget=0.1, refit_interval=1000,
            learning_rate=0.5, drift_threshold=0.9,
        )
        c.observe(lognormal_batch(rng, 1000))
        first_delay = c.policy.delay
        fit_delay = c.events[-1].fit.delay
        assert first_delay == pytest.approx(0.5 * fit_delay)

    def test_correlated_pairs_used_when_available(self):
        rng = np.random.default_rng(8)
        c = OnlinePolicyController(
            percentile=0.95, budget=0.1, refit_interval=1000,
            min_pairs_for_correlation=50,
        )
        x = lognormal_batch(rng, 1000)
        px = x[:100]
        py = 0.8 * px + rng.lognormal(1.0, 1.0, 100)
        c.observe(x, pair_x=px, pair_y=py)
        assert c.n_refits == 1  # fit succeeded via the correlated path

    def test_tracks_shifting_distribution(self):
        """End-to-end drift scenario: the recommended delay follows a
        latency regime change within a few batches."""
        rng = np.random.default_rng(9)
        c = OnlinePolicyController(
            percentile=0.95, budget=0.1, refit_interval=2000,
        )
        for _ in range(3):
            c.observe(lognormal_batch(rng, 1000, mu=1.0))
        delay_before = c.policy.delay
        for _ in range(6):
            c.observe(lognormal_batch(rng, 1000, mu=2.0))  # e^1 ~ 2.7x slower
        assert c.policy.delay > delay_before * 1.5


def hedged_latencies(policy, x, y, rng):
    """Observed completion times min(X, d + Y) under SingleR semantics:
    the reissue fires only when the coin succeeds and X > d."""
    d, q = policy.delay, policy.prob
    fired = (rng.random(x.size) < q) & (x > d)
    return np.where(fired, np.minimum(x, d + y), x)


class TestWindowTruncation:
    def test_keep_last_trims_primary_and_clears_pairs(self):
        log = SlidingWindowLog(capacity=1000)
        log.extend(np.arange(500, dtype=float),
                   pair_x=[1.0, 2.0], pair_y=[3.0, 4.0])
        log.keep_last(100)
        assert len(log) == 100
        assert log.primary()[0] == 400.0
        assert log.n_pairs == 0

    def test_keep_last_validates(self):
        log = SlidingWindowLog(capacity=1000)
        with pytest.raises(ValueError):
            log.keep_last(-1)
        with pytest.raises(ValueError):
            log.keep_last(10, keep_pairs=-1)

    def test_keep_last_can_retain_recent_pairs(self):
        log = SlidingWindowLog(capacity=1000)
        log.extend(np.arange(500, dtype=float),
                   pair_x=[1.0, 2.0, 3.0], pair_y=[4.0, 5.0, 6.0])
        log.keep_last(100, keep_pairs=2)
        assert log.n_pairs == 2
        px, py = log.pairs()
        assert px.tolist() == [2.0, 3.0] and py.tolist() == [5.0, 6.0]

    def test_drift_truncation_keeps_triggering_batch_pairs(self):
        # Pairs delivered with the batch that trips the detector are
        # new-regime evidence: the undamped refit must keep them so the
        # correlated fitter stays armed.
        rng = np.random.default_rng(3)
        c = OnlinePolicyController(
            percentile=0.95, budget=0.2, refit_interval=50_000,
            drift_threshold=0.12, truncate_window_on_drift=True,
        )
        for _ in range(3):
            c.observe(lognormal_batch(rng, 1000, mu=1.0),
                      pair_x=np.full(10, 2.0), pair_y=np.full(10, 3.0))
        fresh_x = rng.lognormal(2.5, 1.0, 40)
        c.observe(lognormal_batch(rng, 1000, mu=2.5),
                  pair_x=fresh_x, pair_y=fresh_x * 1.1)
        assert [e.reason for e in c.events] == ["drift"]
        assert len(c.log) == 1000
        assert c.log.n_pairs == 40  # old pairs gone, fresh batch kept

    def test_fit_ignores_pair_slivers_below_correlation_floor(self):
        # A handful of surviving pairs must not be used as the reissue
        # sample on their own — the fit falls back to ry = rx.
        from repro.core.optimizer import compute_optimal_singler

        rng = np.random.default_rng(5)
        c = OnlinePolicyController(
            percentile=0.95, budget=0.2, refit_interval=50_000,
            min_pairs_for_correlation=50,
        )
        rx = lognormal_batch(rng, 2000)
        c.observe(rx, pair_x=rng.lognormal(1, 1, 10),
                  pair_y=rng.lognormal(1, 1, 10))
        fit = c._fit()
        expected = compute_optimal_singler(
            c.log.primary(), c.log.primary(), 0.95, 0.2
        )
        assert fit.delay == pytest.approx(expected.delay)

    def test_drift_refit_truncates_window_when_enabled(self):
        rng = np.random.default_rng(3)
        c = OnlinePolicyController(
            percentile=0.95, budget=0.2, refit_interval=50_000,
            drift_threshold=0.12, truncate_window_on_drift=True,
        )
        for _ in range(3):
            c.observe(lognormal_batch(rng, 1000, mu=1.0))
        c.observe(lognormal_batch(rng, 1000, mu=2.5))  # drift fires
        assert [e.reason for e in c.events] == ["drift"]
        # Only the triggering batch survives: the fit saw the new regime.
        assert len(c.log) == 1000

    def test_default_keeps_full_window_on_drift(self):
        rng = np.random.default_rng(3)
        c = OnlinePolicyController(
            percentile=0.95, budget=0.2, refit_interval=50_000,
            drift_threshold=0.12,
        )
        for _ in range(3):
            c.observe(lognormal_batch(rng, 1000, mu=1.0))
        c.observe(lognormal_batch(rng, 1000, mu=2.5))
        assert [e.reason for e in c.events] == ["drift"]
        assert len(c.log) == 4000


class TestDriftLowersAchievedTail:
    """Satellite acceptance: a mid-stream distribution shift must trigger
    an undamped drift refit, and the adapted policy must achieve a lower
    tail on the new regime than the policy frozen before the shift."""

    PCT, BUDGET = 0.95, 0.2

    def test_drift_refit_is_undamped_and_beats_frozen_policy(self):
        rng = np.random.default_rng(42)
        c = OnlinePolicyController(
            percentile=self.PCT, budget=self.BUDGET,
            refit_interval=2_000, learning_rate=0.5,
            drift_threshold=0.12, window=20_000,
            truncate_window_on_drift=True,
        )
        # Phase 1: slow regime — let the controller fit it.
        slow = dict(mu=np.log(60.0), sigma=0.7)
        for _ in range(4):
            c.observe(lognormal_batch(rng, 1000, **slow))
        frozen = c.policy
        assert frozen.delay > 0.0
        refits_before = c.n_refits

        # Phase 2: the service gets 3x faster mid-stream.
        fast = dict(mu=np.log(20.0), sigma=0.7)
        for _ in range(4):
            c.observe(lognormal_batch(rng, 1000, **fast))

        drift_events = [e for e in c.events[refits_before:]
                        if e.reason == "drift"]
        assert drift_events, "shift did not trigger a drift refit"
        ev = drift_events[-1]
        # Undamped: the installed delay IS the fit's delay, with no
        # learning-rate pull toward the stale policy.
        assert ev.policy.delay == pytest.approx(ev.fit.delay)

        adapted = c.policy
        assert adapted.delay < frozen.delay  # tracked the speed-up

        # Achieved tail on the new regime: the frozen policy reissues far
        # too late and degenerates to the no-reissue baseline; the
        # adapted policy actually cuts the tail.
        eval_rng = np.random.default_rng(777)
        x = eval_rng.lognormal(fast["mu"], fast["sigma"], 40_000)
        y = eval_rng.lognormal(fast["mu"], fast["sigma"], 40_000)
        tail_frozen = float(np.quantile(
            hedged_latencies(frozen, x, y, np.random.default_rng(1)),
            self.PCT,
        ))
        tail_adapted = float(np.quantile(
            hedged_latencies(adapted, x, y, np.random.default_rng(1)),
            self.PCT,
        ))
        assert tail_adapted < tail_frozen

        # And the adapted policy still honors the reissue budget.
        spend = adapted.prob * float((x > adapted.delay).mean())
        assert spend <= self.BUDGET * 1.15
