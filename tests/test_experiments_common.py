"""Tests for the shared experiment machinery (scales, fitting protocol)."""

import numpy as np
import pytest

from repro.core.policies import NoReissue, SingleD, SingleR
from repro.experiments.common import (
    SCALES,
    Scale,
    baseline_tail,
    compare_policies,
    fit_singled,
    fit_singler,
    get_scale,
    median_tail,
)
from repro.simulation.workloads import queueing_workload

TINY = Scale(
    name="tiny", n_queries=2500, eval_seeds=(1, 2), adaptive_trials=2,
    sweep_points=2,
)


class TestScale:
    def test_budget_grid(self):
        s = SCALES["standard"]
        grid = s.budgets(0.1, 0.5)
        assert grid[0] == 0.1 and grid[-1] == 0.5
        assert grid.size == s.sweep_points

    def test_scales_are_ordered_by_fidelity(self):
        assert (
            SCALES["quick"].n_queries
            < SCALES["standard"].n_queries
            < SCALES["full"].n_queries
        )
        assert len(SCALES["quick"].eval_seeds) <= len(SCALES["full"].eval_seeds)

    def test_get_scale_passthrough_and_errors(self):
        assert get_scale(TINY) is TINY
        with pytest.raises(KeyError):
            get_scale("nope")


class TestMedianTail:
    def test_median_over_seeds(self):
        system = queueing_workload(n_queries=2000, utilization=0.3)
        tail, rate = median_tail(system, NoReissue(), 0.95, (1, 2, 3))
        assert tail > 0 and rate == 0.0

    def test_baseline_tail_helper(self):
        system = queueing_workload(n_queries=2000, utilization=0.3)
        assert baseline_tail(system, 0.95, (1, 2)) > 0

    def test_batch_path_matches_seed_loop(self):
        # QueueingSystem exposes run_batch → median_tail takes the
        # fastsim batch path; it must reproduce the per-seed loop exactly.
        system = queueing_workload(n_queries=2000, utilization=0.3)
        assert hasattr(system, "run_batch")
        pol = SingleR(1.0, 0.3)
        seeds = (101, 103, 107)
        batch_tail, batch_rate = median_tail(system, pol, 0.95, seeds)
        from repro.distributions.base import as_rng

        runs = [system.run(pol, as_rng(s)) for s in seeds]
        assert batch_tail == float(np.median([r.tail(0.95) for r in runs]))
        assert batch_rate == float(np.median([r.reissue_rate for r in runs]))

    def test_compare_policies_keys(self):
        system = queueing_workload(n_queries=2000, utilization=0.3)
        out = compare_policies(
            system,
            {"none": NoReissue(), "sr": SingleR(1.0, 0.2)},
            0.95,
            (1,),
        )
        assert set(out) == {"none", "sr"}
        assert out["sr"][1] > 0  # some reissues dispatched


class TestFitProtocol:
    def test_fit_singler_returns_budget_honouring_policy(self):
        system = queueing_workload(n_queries=3000, utilization=0.3)
        pol = fit_singler(system, 0.95, 0.15, TINY, rng=np.random.default_rng(0))
        assert isinstance(pol, SingleR)
        run = system.run(pol, np.random.default_rng(9))
        assert run.reissue_rate <= 0.15 * 2.0  # within the protocol's slack

    def test_fit_singled_returns_singled(self):
        system = queueing_workload(n_queries=3000, utilization=0.3)
        pol = fit_singled(system, 0.15, TINY, rng=np.random.default_rng(0))
        assert isinstance(pol, SingleD)

    def test_fit_singler_never_much_worse_than_corner(self):
        """The SingleD-corner probe inside fit_singler guards against bad
        adaptive chains: the fitted policy must not lose badly to the
        plain Eq.-2 corner policy."""
        system = queueing_workload(n_queries=3000, utilization=0.3)
        rng = np.random.default_rng(5)
        pol = fit_singler(system, 0.95, 0.2, TINY, rng=rng)
        t_fit, _ = median_tail(system, pol, 0.95, (11, 13, 17))
        base = system.run(NoReissue(), np.random.default_rng(11))
        rx = np.sort(base.primary_response_times)
        corner = SingleR(float(np.quantile(rx, 0.8)), 1.0)
        t_corner, _ = median_tail(system, corner, 0.95, (11, 13, 17))
        # Loose bound: at this tiny scale the Pareto(1.1) P95 estimates
        # carry ~1.5x run-to-run noise themselves.
        assert t_fit <= t_corner * 2.5
