"""Smoke + contract tests for the figure drivers and CLI.

Drivers run at a reduced custom scale so the whole file stays fast; the
full-fidelity sweeps live in benchmarks/.
"""

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    SCALES,
    get_experiment,
    run_experiment,
)
from repro.experiments.common import Scale, get_scale

TINY = Scale(
    name="tiny", n_queries=2500, eval_seeds=(1, 2), adaptive_trials=2,
    sweep_points=2,
)


class TestRegistry:
    def test_all_figures_registered(self):
        assert set(EXPERIMENTS) == {f"fig{i}" for i in range(2, 10)}

    def test_unknown_id_raises_with_choices(self):
        with pytest.raises(KeyError, match="fig2"):
            get_experiment("fig99")

    def test_get_scale(self):
        assert get_scale("quick").name == "quick"
        assert get_scale(TINY) is TINY
        with pytest.raises(KeyError):
            get_scale("huge")
        assert set(SCALES) == {"quick", "standard", "full"}


class TestResultContract:
    """Each driver returns well-formed rows, csv, chart, and notes."""

    @pytest.fixture(scope="class", params=sorted(EXPERIMENTS))
    def result(self, request):
        return run_experiment(request.param, scale=TINY, seed=1)

    def test_type_and_id(self, result):
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id in EXPERIMENTS

    def test_rows_match_headers(self, result):
        assert result.rows, "driver produced no data"
        for row in result.rows:
            assert len(row) == len(result.headers)

    def test_csv_parses(self, result):
        lines = result.csv().splitlines()
        assert lines[0] == ",".join(result.headers)
        assert len(lines) == len(result.rows) + 1

    def test_render_includes_notes(self, result):
        text = result.render()
        assert result.experiment_id in text
        assert all(n in text for n in result.notes)

    def test_table_renders(self, result):
        assert result.title in result.table()


class TestFigureSpecifics:
    def test_fig9_moments_close_to_paper(self):
        res = run_experiment("fig9", scale=TINY, seed=1)
        vals = {(r[0], r[1]): r[2] for r in res.rows}
        assert vals[("redis", "mean_ms")] == pytest.approx(2.37, abs=1.0)
        assert vals[("lucene", "mean_ms")] == pytest.approx(39.7, abs=4.0)
        assert vals[("lucene", "std_ms")] == pytest.approx(22, abs=8)

    def test_fig4_correlation_dampened_by_queueing(self):
        res = run_experiment("fig4", scale=TINY, seed=1)
        assert res.meta["corr_queueing"] < res.meta["corr_correlated"]

    def test_fig3_rows_cover_all_workloads_and_policies(self):
        res = run_experiment("fig3", scale=TINY, seed=1)
        workloads = {r[0] for r in res.rows}
        policies = {r[2] for r in res.rows}
        assert workloads == {"independent", "correlated", "queueing"}
        assert policies == {"SingleR", "SingleD"}

    def test_fig3_budget_column_respected(self):
        res = run_experiment("fig3", scale=TINY, seed=1)
        for r in res.rows:
            if r[2] == "SingleR" and r[0] != "queueing":
                budget, q, outstanding = r[1], r[4], r[5]
                assert q * outstanding <= budget * 1.2 + 0.01

    def test_fig8_best_budget_positive(self):
        res = run_experiment("fig8", scale=TINY, seed=1)
        assert 0.0 <= res.meta["best_budget"] <= 0.5
        trials = [r[0] for r in res.rows]
        assert trials == sorted(trials)


class TestCli:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "fig9" in out
        # Each entry carries its one-line docstring summary, not the
        # module basename.
        assert "Figure 2: load perturbation" in out
        assert "Figure 9: service-time distributions" in out

    def test_unknown_experiment(self, capsys):
        from repro.cli import main

        assert main(["fig99"]) == 2

    def test_writes_outputs(self, tmp_path, capsys, monkeypatch):
        from repro import cli
        from repro.experiments import registry

        def fake_run(eid, scale="standard", seed=42, **kw):
            return run_experiment("fig9", scale=TINY, seed=1)

        monkeypatch.setattr(cli, "run_experiment", fake_run)
        assert cli.main(["fig9", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig9.txt").exists()
        assert (tmp_path / "fig9.csv").exists()
