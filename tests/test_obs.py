"""Tests for repro.obs: tracing, metrics, exports, and instrumentation."""

import json
import tracemalloc

import pytest

from repro.obs import (
    NULL_TRACER,
    Counter,
    Gauge,
    MetricRegistry,
    Span,
    Tracer,
    chrome_trace,
    get_metrics,
    get_tracer,
    metrics_scope,
    span_tree,
    summary_table,
    tracing,
    tracing_enabled,
    write_trace_artifacts,
)
from repro.obs.trace import absorb, remote_context, snapshot_context
from repro.parallel.sweep import SweepPoint, run_sweep


def traced_point(rng, scale=1.0):
    """Module-level sweep function (picklable) that opens its own span."""
    tracer = get_tracer()
    with tracer.span("worker.unit", scale=scale) as span:
        span.attrs["drawn"] = True
        if tracer.enabled:
            get_metrics().counter("worker.calls").inc()
        return float(rng.normal(0, scale))


class TestNullTracer:
    def test_disabled_by_default(self):
        assert tracing_enabled() is False
        assert get_tracer() is NULL_TRACER
        assert NULL_TRACER.enabled is False

    def test_single_shared_span_object(self):
        # The null path allocates no per-call span: every call hands back
        # the same singleton, whatever the name or attrs.
        a = NULL_TRACER.span("a")
        b = NULL_TRACER.span("b", attr=1)
        assert a is b
        with a as entered:
            assert entered is a

    def test_attr_writes_discarded(self):
        with NULL_TRACER.span("hot") as span:
            span.attrs["key"] = "value"
            span.attrs.update(other=2)
        assert len(span.attrs) == 0

    def test_drain_empty(self):
        NULL_TRACER.event("e")
        assert NULL_TRACER.drain() == []

    def test_no_net_allocation_overhead(self):
        # Overhead guard: a disabled-tracer hot loop must not accumulate
        # memory — every transient (the kwargs dict) is freed per
        # iteration, so the net tracemalloc delta stays near zero.
        tracer = get_tracer()
        for _ in range(100):  # warm any lazy caches first
            with tracer.span("warm"):
                pass
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        for _ in range(10_000):
            with tracer.span("hot"):
                pass
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert after - before < 16_384  # bytes; zero modulo interpreter noise

    def test_disabled_run_records_no_spans(self):
        from repro.core.policies import SingleR
        from repro.fastsim import ReplicationSpec, simulate_batch
        from repro.simulation.workloads import queueing_workload

        system = queueing_workload(n_queries=200)
        simulate_batch([ReplicationSpec(system.config, SingleR(6.0, 0.5), seed=1)])
        assert get_tracer().drain() == []


class TestTracer:
    def test_nesting_and_attrs(self):
        with tracing() as tracer:
            with tracer.span("outer", a=1) as outer:
                with tracer.span("inner") as inner:
                    inner.attrs["b"] = 2
            tracer.event("mark", c=3)
        spans = {s.name: s for s in tracer.spans}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None
        assert spans["outer"].attrs == {"a": 1}
        assert spans["inner"].attrs == {"b": 2}
        assert spans["mark"].attrs == {"c": 3}
        assert spans["mark"].t_start == spans["mark"].t_end
        assert spans["outer"].t_end >= spans["inner"].t_end

    def test_tracing_restores_previous_tracer(self):
        with tracing():
            assert tracing_enabled()
        assert not tracing_enabled()
        assert get_tracer() is NULL_TRACER

    def test_span_roundtrips_through_dict(self):
        with tracing() as tracer:
            with tracer.span("x", k="v"):
                pass
        (span,) = tracer.spans
        clone = Span.from_dict(json.loads(json.dumps(span.as_dict())))
        assert clone == span

    def test_exception_still_closes_span(self):
        with tracing() as tracer:
            with pytest.raises(RuntimeError):
                with tracer.span("doomed"):
                    raise RuntimeError("boom")
        (span,) = tracer.spans
        assert span.name == "doomed"
        assert span.t_end >= span.t_start

    def test_remote_context_reparents(self):
        with tracing() as tracer:
            with tracer.span("parent") as parent:
                ctx = snapshot_context()
            # Simulate the worker side: a fresh buffering tracer whose
            # roots hang under the shipped parent id.
            with remote_context(ctx) as worker:
                with worker.span("child"):
                    pass
            shipped = [s.as_dict() for s in worker.drain()]
            absorb(shipped)
        child = next(s for s in tracer.spans if s.name == "child")
        assert child.parent_id == parent.span_id
        assert child.trace_id == parent.trace_id


class TestPoolPropagation:
    def test_spans_cross_process_pool(self):
        import os

        points = [SweepPoint(key=f"p{i}", params={"scale": 1.0}) for i in range(4)]
        with tracing() as tracer, metrics_scope() as registry:
            with tracer.span("sweep.root") as root:
                res = run_sweep(traced_point, points, base_seed=3, n_workers=2)
        assert all(r.ok for r in res)
        workers = [s for s in tracer.spans if s.name == "worker.unit"]
        assert len(workers) == len(points)
        # Child spans crossed the pool: at least one came from another pid
        # and every one re-parented under the live trace.
        assert any(s.pid != os.getpid() for s in workers)
        ids = {s.span_id for s in tracer.spans}
        assert all(s.parent_id in ids for s in workers)
        assert all(s.trace_id == root.trace_id for s in workers)
        assert registry.counter("worker.calls").value == len(points)

    def test_pool_results_identical_with_and_without_tracing(self):
        points = [SweepPoint(key=f"p{i}", params={"scale": 2.0}) for i in range(3)]
        plain = run_sweep(traced_point, points, base_seed=9, n_workers=2)
        with tracing():
            traced = run_sweep(traced_point, points, base_seed=9, n_workers=2)
        assert [r.value for r in plain] == [r.value for r in traced]


class TestMetrics:
    def test_counter_gauge_quantile_merge(self):
        a, b = MetricRegistry(), MetricRegistry()
        a.counter("n").inc(3)
        b.counter("n").inc(4)
        a.gauge("g").set(1.0)
        b.gauge("g").set(2.0)
        for i in range(100):
            a.quantile("q").observe(float(i))
            b.quantile("q").observe(float(i + 100))
        a.merge(b)
        assert a.counter("n").value == 7
        assert a.gauge("g").value == 2.0  # last writer wins
        assert a.quantile("q").count == 200
        assert a.quantile("q").quantile(0.5) == pytest.approx(99.5, abs=5.0)

    def test_type_conflict_rejected(self):
        reg = MetricRegistry()
        reg.counter("m")
        with pytest.raises(TypeError, match="m"):
            reg.gauge("m")

    def test_scope_installs_and_restores(self):
        outer = get_metrics()
        with metrics_scope() as inner:
            assert get_metrics() is inner
            inner.counter("x").inc()
        assert get_metrics() is outer
        assert "x" not in outer

    def test_render_and_json(self):
        reg = MetricRegistry()
        reg.counter("hits").inc(5)
        reg.gauge("rate").set(2.5)
        text = reg.render()
        assert "hits" in text and "rate" in text
        data = json.loads(reg.to_json())
        assert data["hits"]["value"] == 5

    def test_counter_gauge_primitives(self):
        c = Counter("c")
        c.inc()
        c.inc(2)
        assert c.value == 3
        g = Gauge("g")
        assert g.updates == 0
        g.set(1.5)
        assert (g.value, g.updates) == (1.5, 1)


class TestExports:
    def _trace_quick(self):
        from repro.scenarios import Session

        with tracing() as tracer, metrics_scope() as registry:
            Session(engine="fastsim").run("queueing-tail-quick", seeds=[101])
        return tracer.spans, registry

    def test_chrome_trace_schema(self):
        spans, registry = self._trace_quick()
        doc = chrome_trace(spans, metrics=registry.as_dict())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert len(events) == len(spans)
        ids = {e["args"]["span_id"] for e in events}
        for e in events:
            assert e["ph"] == "X"
            assert isinstance(e["name"], str)
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
            parent = e["args"]["parent_id"]
            assert parent is None or parent in ids
        assert "fastsim.replications" in doc["metadata"]["metrics"]

    def test_chrome_trace_is_json_serializable(self):
        spans, registry = self._trace_quick()
        json.dumps(chrome_trace(spans, metrics=registry.as_dict()))

    def test_span_tree_and_summary(self):
        spans, _ = self._trace_quick()
        tree = span_tree(spans)
        assert "scenario.run" in tree
        assert "fastsim.batch" in tree
        table = summary_table(spans)
        assert "span" in table and "p99 ms" in table

    def test_write_trace_artifacts(self, tmp_path):
        spans, registry = self._trace_quick()
        arts = write_trace_artifacts(
            spans, tmp_path, stem="t", metrics=registry.as_dict()
        )
        assert set(arts) == {"chrome", "jsonl", "metrics"}
        chrome = json.loads(arts["chrome"].read_text())
        assert chrome["traceEvents"]
        lines = arts["jsonl"].read_text().splitlines()
        assert len(lines) == len(spans)
        assert Span.from_dict(json.loads(lines[0]))

    def test_overlapping_roots_get_distinct_lanes(self):
        # Two concurrent, non-nested spans in one pid must not share a
        # Chrome lane, or the viewer draws them as a bogus nesting.
        tracer = Tracer()
        a = Span(name="a", trace_id="t", span_id="1", parent_id=None,
                 t_start=0.0, t_end=2.0)
        b = Span(name="b", trace_id="t", span_id="2", parent_id=None,
                 t_start=1.0, t_end=3.0)
        tracer.spans.extend([a, b])
        events = chrome_trace(tracer.spans)["traceEvents"]
        lanes = {e["args"]["span_id"]: e["tid"] for e in events}
        assert lanes["1"] != lanes["2"]


class TestServingTrace:
    def test_request_span_nests_reissue_and_cancel(self, tmp_path):
        # Acceptance criterion: a traced serving run yields Chrome-trace
        # JSON where at least one request span contains nested reissue
        # and cancellation child spans.
        from repro.scenarios import Session

        scenario = {
            "name": "hedge-trace",
            "system": {"kind": "independent"},
            "policy": {"kind": "single-r", "delay": 1.0, "prob": 1.0},
            "objective": {"percentile": 0.99},
            "scale": {"n_queries": 40, "seeds": [7]},
        }
        with tracing() as tracer:
            Session(
                engine="serving", engine_options={"time_scale": 2e-5}
            ).run(scenario)
        arts = write_trace_artifacts(tracer.spans, tmp_path, stem="hedge")
        events = json.loads(arts["chrome"].read_text())["traceEvents"]
        children_of = {}
        for e in events:
            children_of.setdefault(e["args"]["parent_id"], []).append(e["name"])
        requests = [
            e for e in events if e["name"] == "serving.request"
        ]
        assert requests
        nested = [
            e
            for e in requests
            if "serving.attempt.reissue" in children_of.get(e["args"]["span_id"], [])
            and "serving.cancel" in children_of.get(e["args"]["span_id"], [])
        ]
        assert nested, "no request span with nested reissue + cancel children"

    def test_chaos_spiked_primary_loses_race_with_cancel_in_trace(self):
        # Chaos regression for the PR 6 race-acceptance test: a primary
        # slowed 50x by fault injection must lose to the policy reissue,
        # and the trace must show the reissue child winning plus the
        # cancellation of the spiked primary.
        import asyncio

        import numpy as np

        from repro.core.policies import SingleR
        from repro.distributions import Deterministic
        from repro.serving.backends import SyntheticBackend
        from repro.serving.chaos import ChaosBackend
        from repro.serving.hedge import HedgedClient

        backend = ChaosBackend(
            SyntheticBackend(Deterministic(10.0), time_scale=2e-4)
        )
        backend.spike(factor=50.0, prob=1.0, primary_only=True)
        client = HedgedClient(
            backend, SingleR(1.0, 1.0), rng=np.random.default_rng(3)
        )
        with tracing() as tracer:
            outcomes = asyncio.run(client.serve(5))
        for outcome in outcomes:
            # Reissues are spared the spike, so the hedge wins every race
            # at (d=1) + 10 model ms instead of the spiked 500.
            assert outcome.winner == "reissue"
            assert outcome.latency_ms == pytest.approx(11.0)
            assert outcome.cancelled_attempts == 1
        requests = [s for s in tracer.spans if s.name == "serving.request"]
        assert len(requests) == 5
        children_of = {}
        for span in tracer.spans:
            children_of.setdefault(span.parent_id, []).append(span.name)
        for span in requests:
            names = children_of.get(span.span_id, [])
            assert "serving.attempt.reissue" in names
            # The cancellation of the spiked primary is a point event
            # (zero-duration child span) under the request span.
            assert "serving.cancel" in names
            assert span.attrs["winner"] == "reissue"

    def test_race_outcome_attrs_on_request_span(self):
        from repro.scenarios import Session

        scenario = {
            "name": "hedge-attrs",
            "system": {"kind": "independent"},
            "policy": {"kind": "single-r", "delay": 1.0, "prob": 1.0},
            "objective": {"percentile": 0.99},
            "scale": {"n_queries": 20, "seeds": [11]},
        }
        with tracing() as tracer:
            Session(
                engine="serving", engine_options={"time_scale": 2e-5}
            ).run(scenario)
        requests = [s for s in tracer.spans if s.name == "serving.request"]
        assert requests
        for span in requests:
            assert span.attrs["winner"] in ("primary", "reissue")
            assert span.attrs["latency_ms"] >= 0
            assert span.attrs["n_reissues"] >= 0


class TestCliIntegration:
    def test_trace_subcommand_writes_artifacts(self, tmp_path, capsys):
        from repro.main import main

        rc = main(
            [
                "trace",
                "queueing-tail-quick",
                "--engine",
                "fastsim",
                "--seeds",
                "101",
                "--out",
                str(tmp_path),
                "--stem",
                "smoke",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "scenario.run" in out
        assert "span summary" in out
        chrome = json.loads((tmp_path / "smoke.chrome.json").read_text())
        assert chrome["traceEvents"]

    def test_run_trace_flag_prints_summary(self, capsys):
        from repro.main import main

        rc = main(
            ["run", "queueing-tail-quick", "--engine", "fastsim",
             "--seeds", "101", "--trace"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "span summary" in out
        assert "fastsim.replications" in out

    def test_run_without_trace_flag_stays_silent(self, capsys):
        from repro.main import main

        rc = main(
            ["run", "queueing-tail-quick", "--engine", "fastsim",
             "--seeds", "101"]
        )
        assert rc == 0
        assert "span summary" not in capsys.readouterr().out


class TestPipelineCacheStats:
    def test_run_report_surfaces_cache_stats(self, tmp_path, capsys):
        from repro.main import main

        argv = [
            "run", "queueing-tail-quick", "--engine", "pipeline",
            "--cache", str(tmp_path / "c"), "--seeds", "101",
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "pipeline cache" in cold
        assert "misses" in cold
        assert main(argv) == 0  # warm: same cells now hit
        warm = capsys.readouterr().out
        assert "pipeline cache" in warm
        hit_line = next(
            line for line in warm.splitlines() if "pipeline cache" in line
        )
        assert "hits 0" not in hit_line

    def test_summary_json_includes_per_wave(self, tmp_path):
        from repro.scenarios import Session

        report = Session(
            engine="pipeline", cache_dir=tmp_path / "c"
        ).run("queueing-tail-quick", seeds=[101])
        stats = report.summary()["pipeline"]
        assert {"cache_hits", "cache_misses", "per_wave"} <= set(stats)
        assert stats["per_wave"], "expected at least one wave"
        wave = stats["per_wave"][0]
        assert {"wave", "cells", "cache_hits", "cache_misses"} <= set(wave)
