"""Unit tests for the reissue policy families (paper §2-§3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import (
    DoubleR,
    ImmediateReissue,
    MultipleR,
    NoReissue,
    ReissuePolicy,
    SingleD,
    SingleR,
)
from repro.distributions import Exponential, LogNormal, Pareto


class TestConstruction:
    def test_no_reissue_has_no_stages(self):
        assert NoReissue().n_stages == 0

    def test_singler_stores_parameters(self):
        p = SingleR(3.5, 0.25)
        assert p.delay == 3.5
        assert p.prob == 0.25
        assert p.stages == ((3.5, 0.25),)

    def test_singled_is_singler_with_q1(self):
        assert SingleD(2.0).stages == ((2.0, 1.0),)

    def test_immediate_multiplies_copies(self):
        p = ImmediateReissue(copies=3)
        assert p.stages == ((0.0, 1.0),) * 3

    def test_immediate_rejects_zero_copies(self):
        with pytest.raises(ValueError):
            ImmediateReissue(copies=0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="delay"):
            SingleR(-1.0, 0.5)

    @pytest.mark.parametrize("q", [-0.1, 1.5])
    def test_probability_out_of_range_rejected(self, q):
        with pytest.raises(ValueError, match="probability"):
            SingleR(1.0, q)

    def test_stage_delays_must_be_sorted(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            MultipleR([(5.0, 0.5), (2.0, 0.5)])

    def test_multipler_needs_a_stage(self):
        with pytest.raises(ValueError):
            MultipleR([])

    def test_equality_and_hash_by_stages(self):
        assert SingleR(1.0, 0.5) == MultipleR([(1.0, 0.5)])
        assert hash(SingleR(1.0, 0.5)) == hash(MultipleR([(1.0, 0.5)]))
        assert SingleR(1.0, 0.5) != SingleR(1.0, 0.6)

    def test_repr_mentions_parameters(self):
        assert "d=2" in repr(SingleD(2.0))


class TestDrawPlan:
    def test_no_reissue_draws_empty(self):
        assert NoReissue().draw_plan(np.random.default_rng(0)) == ()

    def test_deterministic_policy_always_fires(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            assert SingleD(4.0).draw_plan(rng) == (4.0,)

    def test_q_zero_never_fires(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            assert SingleR(4.0, 0.0).draw_plan(rng) == ()

    def test_draw_plans_matches_probability(self):
        rng = np.random.default_rng(1)
        plans = SingleR(2.0, 0.3).draw_plans(20_000, rng)
        rate = sum(len(p) for p in plans) / 20_000
        assert rate == pytest.approx(0.3, abs=0.02)

    def test_draw_plans_empty_policy(self):
        assert SingleR(1.0, 1.0).draw_plans(0) == []
        assert NoReissue().draw_plans(5) == [()] * 5

    def test_multi_stage_plans_are_subsets_of_delays(self):
        rng = np.random.default_rng(2)
        pol = MultipleR([(1.0, 0.5), (3.0, 0.5)])
        for plan in pol.draw_plans(100, rng):
            assert set(plan) <= {1.0, 3.0}


class TestAnalyticModel:
    """Equations 1-4 against closed-form distributions."""

    def test_eq1_singled_completion(self):
        X = Exponential(1.0)
        t, d = 2.0, 0.5
        expected = X.cdf(t) + (1 - X.cdf(t)) * X.cdf(t - d)
        got = SingleD(d).completion_cdf(t, X, X)
        assert got == pytest.approx(expected)

    def test_eq3_singler_completion(self):
        X = Exponential(1.0)
        t, d, q = 2.0, 0.5, 0.3
        expected = X.cdf(t) + q * (1 - X.cdf(t)) * X.cdf(t - d)
        got = SingleR(d, q).completion_cdf(t, X, X)
        assert got == pytest.approx(expected)

    def test_eq2_eq4_budgets(self):
        X = Exponential(1.0)
        d = 0.7
        assert SingleD(d).expected_budget(X, X) == pytest.approx(1 - X.cdf(d))
        assert SingleR(d, 0.4).expected_budget(X, X) == pytest.approx(
            0.4 * (1 - X.cdf(d))
        )

    def test_no_reissue_budget_zero(self):
        assert NoReissue().expected_budget(Exponential(1.0), Exponential(1.0)) == 0.0

    def test_completion_cdf_monotone_in_t(self):
        X = Pareto(1.1, 2.0)
        pol = SingleR(3.0, 0.5)
        ts = np.linspace(0.1, 50, 100)
        cdf = pol.completion_cdf(ts, X, X)
        assert np.all(np.diff(cdf) >= -1e-12)

    def test_reissue_before_t_helps(self):
        X = LogNormal(1.0, 1.0)
        t = float(X.quantile(0.95))
        base = NoReissue().completion_cdf(t, X, X)
        helped = SingleR(1.0, 0.5).completion_cdf(t, X, X)
        assert helped > base

    def test_multi_stage_budget_accounts_for_earlier_reissues(self):
        # With a certain, instant first reissue, a second stage fires only
        # if both the primary AND the first reissue are still outstanding.
        X = Exponential(1.0)
        pol = MultipleR([(0.0, 1.0), (1.0, 1.0)])
        expected = 1.0 + (1 - X.cdf(1.0)) * (1 - X.cdf(1.0))
        assert pol.expected_budget(X, X) == pytest.approx(expected)

    def test_tail_latency_inverts_completion(self):
        X = Exponential(0.5)
        pol = SingleR(1.0, 0.5)
        t95 = pol.tail_latency(95.0, X, X)
        assert pol.completion_cdf(t95, X, X) == pytest.approx(0.95, abs=1e-6)

    def test_tail_latency_validates_k(self):
        with pytest.raises(ValueError):
            SingleD(1.0).tail_latency(0.0, Exponential(1.0), Exponential(1.0))

    def test_immediate_reissue_beats_delayed_with_q1(self):
        X = Pareto(1.1, 2.0)
        t_imm = ImmediateReissue().tail_latency(99.0, X, X)
        t_del = SingleD(5.0).tail_latency(99.0, X, X)
        assert t_imm <= t_del


@settings(max_examples=60, deadline=None)
@given(
    d=st.floats(0.0, 10.0),
    q=st.floats(0.0, 1.0),
    t=st.floats(0.1, 30.0),
)
def test_property_singler_completion_is_probability(d, q, t):
    X = Exponential(0.8)
    v = float(SingleR(d, q).completion_cdf(t, X, X))
    assert 0.0 <= v <= 1.0


@settings(max_examples=60, deadline=None)
@given(
    d=st.floats(0.0, 10.0),
    q1=st.floats(0.0, 1.0),
    q2=st.floats(0.0, 1.0),
    t=st.floats(0.1, 30.0),
)
def test_property_higher_q_never_hurts(d, q1, q2, t):
    X = Exponential(0.8)
    lo, hi = sorted([q1, q2])
    assert float(SingleR(d, hi).completion_cdf(t, X, X)) >= float(
        SingleR(d, lo).completion_cdf(t, X, X)
    ) - 1e-12


@settings(max_examples=40, deadline=None)
@given(
    stages=st.lists(
        st.tuples(st.floats(0.0, 5.0), st.floats(0.0, 1.0)),
        min_size=1,
        max_size=4,
    )
)
def test_property_budget_bounded_by_stage_count(stages):
    stages = sorted(stages, key=lambda s: s[0])
    X = Exponential(1.0)
    pol = ReissuePolicy(stages)
    b = pol.expected_budget(X, X)
    assert -1e-12 <= b <= len(stages) + 1e-12
