"""Unit tests for the parametric service-time distributions."""

import numpy as np
import pytest

from repro.distributions import (
    Deterministic,
    Exponential,
    LogNormal,
    Pareto,
    Uniform,
    Weibull,
)

ALL_DISTS = [
    Pareto(1.1, 2.0),
    Pareto(2.5, 1.0),
    LogNormal(1.0, 1.0),
    LogNormal(0.0, 0.25),
    Exponential(0.1),
    Exponential(2.0),
    Weibull(0.7, 3.0),
    Weibull(2.0, 1.0),
    Uniform(1.0, 9.0),
    Deterministic(4.2),
]


@pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: repr(d))
class TestCommonContract:
    def test_samples_shape_and_positivity(self, dist, rng):
        s = dist.sample(1000, rng)
        assert s.shape == (1000,)
        assert s.dtype == np.float64
        assert np.all(s >= 0.0)

    def test_cdf_monotone_and_bounded(self, dist):
        xs = np.linspace(0.0, 100.0, 501)
        c = dist.cdf(xs)
        assert np.all(c >= 0.0) and np.all(c <= 1.0)
        assert np.all(np.diff(c) >= -1e-12)

    def test_quantile_inverts_cdf(self, dist):
        ps = np.array([0.1, 0.5, 0.9, 0.99])
        qs = np.asarray(dist.quantile(ps))
        # CDF at the quantile must be >= p (right-continuous inverse).
        assert np.all(dist.cdf(qs + 1e-9) >= ps - 1e-9)

    def test_sample_matches_cdf_ks(self, dist, rng):
        """One-sample KS-style check: empirical CDF close to analytic."""
        if isinstance(dist, Deterministic):
            pytest.skip("KS distance is degenerate for a point mass")
        s = np.sort(dist.sample(20000, rng))
        emp = (np.arange(s.size) + 0.5) / s.size
        ana = dist.cdf(s)
        assert float(np.max(np.abs(emp - ana))) < 0.02

    def test_determinism_per_seed(self, dist):
        a = dist.sample(100, np.random.default_rng(7))
        b = dist.sample(100, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_percentile_bounds_validation(self, dist):
        with pytest.raises(ValueError):
            dist.percentile(101.0)
        with pytest.raises(ValueError):
            dist.percentile(-0.1)


class TestPareto:
    def test_mean_finite_iff_shape_gt_1(self):
        assert Pareto(1.1, 2.0).mean() == pytest.approx(22.0)
        assert Pareto(0.9, 2.0).mean() == float("inf")

    def test_variance_infinite_for_paper_params(self):
        assert Pareto(1.1, 2.0).variance() == float("inf")
        assert Pareto(3.0, 1.0).variance() == pytest.approx(0.75)

    def test_survival_closed_form(self):
        p = Pareto(1.1, 2.0)
        x = 10.0
        assert float(p.survival(x)) == pytest.approx((2.0 / 10.0) ** 1.1)

    def test_samples_at_least_mode(self, rng):
        s = Pareto(1.5, 3.0).sample(1000, rng)
        assert np.all(s >= 3.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Pareto(0.0, 1.0)
        with pytest.raises(ValueError):
            Pareto(1.0, -1.0)


class TestLogNormal:
    def test_mean_closed_form(self):
        assert LogNormal(1.0, 1.0).mean() == pytest.approx(np.exp(1.5))

    def test_median_is_exp_mu(self):
        assert float(LogNormal(2.0, 0.7).quantile(0.5)) == pytest.approx(
            np.exp(2.0), rel=1e-9
        )

    def test_sample_mean_converges(self, rng):
        d = LogNormal(1.0, 0.5)
        s = d.sample(200000, rng)
        assert s.mean() == pytest.approx(d.mean(), rel=0.02)


class TestExponential:
    def test_memoryless_quantiles(self):
        d = Exponential(0.1)
        assert float(d.quantile(0.5)) == pytest.approx(np.log(2.0) / 0.1)

    def test_mean(self):
        assert Exponential(0.1).mean() == pytest.approx(10.0)

    def test_cdf_at_zero(self):
        assert float(Exponential(1.0).cdf(0.0)) == 0.0


class TestWeibull:
    def test_shape_1_is_exponential(self, rng):
        w = Weibull(1.0, 10.0)
        e = Exponential(0.1)
        xs = np.linspace(0.1, 50.0, 100)
        np.testing.assert_allclose(w.cdf(xs), e.cdf(xs), atol=1e-12)

    def test_mean_closed_form(self):
        assert Weibull(2.0, 2.0).mean() == pytest.approx(
            2.0 * np.sqrt(np.pi) / 2.0
        )


class TestUniformDeterministic:
    def test_uniform_bounds(self, rng):
        s = Uniform(2.0, 5.0).sample(1000, rng)
        assert s.min() >= 2.0 and s.max() < 5.0

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            Uniform(5.0, 5.0)
        with pytest.raises(ValueError):
            Uniform(-1.0, 5.0)

    def test_deterministic_is_constant(self, rng):
        s = Deterministic(3.0).sample(10, rng)
        assert np.all(s == 3.0)
        assert Deterministic(3.0).variance() == 0.0

    def test_deterministic_cdf_step(self):
        d = Deterministic(3.0)
        assert float(d.cdf(2.999)) == 0.0
        assert float(d.cdf(3.0)) == 1.0
