"""Tests for the Empirical distribution and percentile conventions."""

import numpy as np
import pytest

from repro.distributions import Empirical, tail_percentile


class TestEmpirical:
    def test_strict_cdf_convention(self):
        # DiscreteCDF counts samples strictly below t (paper Fig. 1).
        e = Empirical([1.0, 2.0, 2.0, 3.0])
        assert float(e.cdf(2.0)) == pytest.approx(0.25)
        assert float(e.cdf(2.0001)) == pytest.approx(0.75)
        assert float(e.cdf(0.0)) == 0.0
        assert float(e.cdf(100.0)) == 1.0

    def test_quantile_higher_rule(self):
        e = Empirical(np.arange(1, 101, dtype=float))  # 1..100
        assert float(e.quantile(0.99)) == 99.0
        assert float(e.quantile(1.0)) == 100.0
        assert float(e.quantile(0.0)) == 1.0

    def test_quantile_guarantee(self, rng):
        s = rng.exponential(5.0, size=997)
        e = Empirical(s)
        for p in (0.5, 0.9, 0.95, 0.99):
            q = float(e.quantile(p))
            assert np.mean(s <= q) >= p

    def test_bootstrap_sampling_from_support(self, rng):
        s = np.array([1.0, 5.0, 9.0])
        e = Empirical(s)
        draws = e.sample(1000, rng)
        assert set(np.unique(draws)) <= set(s)

    def test_min_max_mean(self):
        e = Empirical([3.0, 1.0, 2.0])
        assert e.min() == 1.0
        assert e.max() == 3.0
        assert e.mean() == pytest.approx(2.0)
        assert len(e) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            Empirical([])
        with pytest.raises(ValueError):
            Empirical([[1.0, 2.0]])
        with pytest.raises(ValueError):
            Empirical([1.0, np.nan])


class TestTailPercentile:
    def test_matches_empirical_quantile(self, rng):
        s = rng.lognormal(1.0, 1.0, size=501)
        assert tail_percentile(s, 99.0) == pytest.approx(
            float(Empirical(s).percentile(99.0))
        )

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            tail_percentile([], 99.0)

    def test_bad_k_raises(self):
        with pytest.raises(ValueError):
            tail_percentile([1.0], 150.0)


class TestPresorted:
    def test_presorted_identical_results(self, rng):
        s = rng.lognormal(2.0, 0.6, 5000)
        fast = Empirical(np.sort(s), presorted=True)
        slow = Empirical(s)
        xs = rng.uniform(0.0, 60.0, 200)
        np.testing.assert_array_equal(fast.cdf(xs), slow.cdf(xs))
        ps = np.linspace(0.0, 1.0, 101)
        np.testing.assert_array_equal(fast.quantile(ps), slow.quantile(ps))
        np.testing.assert_array_equal(fast.sorted_samples, slow.sorted_samples)

    def test_presorted_skips_the_sort_copy(self):
        s = np.array([1.0, 2.0, 3.0])
        e = Empirical(s, presorted=True)
        assert np.array_equal(e.sorted_samples, s)

    def test_presorted_lie_rejected(self):
        with pytest.raises(ValueError, match="not sorted"):
            Empirical([3.0, 1.0, 2.0], presorted=True)
