"""Edge cases for the thinnest-covered leaves: utilization calibration
(`simulation/calibrate.py`) and the ASCII chart renderers
(`viz/ascii_chart.py`) — empty samples, single-point series, and
non-finite values.
"""

import numpy as np
import pytest

from repro.simulation.calibrate import (
    arrival_rate_for_utilization,
    calibrate_arrival_rate,
)
from repro.viz.ascii_chart import histogram_chart, line_chart, scatter_chart


class TestArrivalRateForUtilization:
    def test_closed_form(self):
        # rho = lambda * E[S] / n  =>  lambda = rho * n / E[S]
        assert arrival_rate_for_utilization(0.3, 10, 2.0) == pytest.approx(1.5)

    @pytest.mark.parametrize("rho", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_bad_utilization(self, rho):
        with pytest.raises(ValueError, match="utilization"):
            arrival_rate_for_utilization(rho, 10, 2.0)

    def test_rejects_bad_servers_and_service(self):
        with pytest.raises(ValueError, match="n_servers"):
            arrival_rate_for_utilization(0.3, 0, 2.0)
        with pytest.raises(ValueError, match="mean_service"):
            arrival_rate_for_utilization(0.3, 10, 0.0)
        with pytest.raises(ValueError, match="mean_service"):
            arrival_rate_for_utilization(0.3, 10, float("nan"))  # nan > 0 is False


class TestCalibrateArrivalRate:
    def test_converges_on_linear_system(self):
        # Open-loop utilization is linear in rate: measure = rate * 0.4.
        rate = calibrate_arrival_rate(
            lambda r: r * 0.4, target_utilization=0.3, initial_rate=0.1
        )
        assert rate * 0.4 == pytest.approx(0.3, rel=1e-6)

    def test_zero_measurement_doubles_rate(self):
        # A dead system (measured utilization 0) must not divide by zero;
        # the rate escalates geometrically instead.
        seen = []

        def measure(rate):
            seen.append(rate)
            return 0.0

        out = calibrate_arrival_rate(
            measure, target_utilization=0.5, initial_rate=1.0, iterations=3
        )
        assert seen == [1.0, 2.0, 4.0]
        assert out == 8.0

    def test_damping_still_converges(self):
        # damping=0.5 halves the log-error per iteration, so 12
        # iterations shrink the initial 7.5x mismatch below 0.1%.
        rate = calibrate_arrival_rate(
            lambda r: r * 0.4,
            target_utilization=0.3,
            initial_rate=0.1,
            iterations=12,
            damping=0.5,
        )
        assert rate * 0.4 == pytest.approx(0.3, rel=1e-3)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="target_utilization"):
            calibrate_arrival_rate(lambda r: r, 1.0, 1.0)
        with pytest.raises(ValueError, match="initial_rate"):
            calibrate_arrival_rate(lambda r: r, 0.5, 0.0)


class TestLineChartEdges:
    def test_empty_series_mapping_rejected(self):
        with pytest.raises(ValueError, match="at least one series"):
            line_chart({})

    def test_single_point_series_renders(self):
        # A one-point series has zero x- and y-span; the renderer must
        # not divide by zero.
        out = line_chart({"s": ([1.0], [2.0])})
        assert "y: 2 .. 2" in out
        assert "x: 1 .. 1" in out
        assert "*" in out

    def test_nan_points_skipped(self):
        out = line_chart(
            {"s": ([0.0, 1.0, 2.0], [1.0, float("nan"), 3.0])}
        )
        # Finite points still define the axes.
        assert "y: 1 .. 3" in out

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError, match="no finite data"):
            line_chart({"s": ([0.0, 1.0], [float("nan")] * 2)})

    def test_too_small_grid_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            line_chart({"s": ([0.0], [0.0])}, width=4, height=2)

    def test_scatter_empty_rejected(self):
        with pytest.raises(ValueError, match="no finite data"):
            scatter_chart([], [])


class TestHistogramEdges:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            histogram_chart([], 1.0)

    def test_bad_bin_width_rejected(self):
        with pytest.raises(ValueError, match="bin_width"):
            histogram_chart([1.0], 0.0)

    def test_single_value_renders_one_occupied_bin(self):
        out = histogram_chart([0.5], 1.0, log_counts=False)
        assert "| 1" in out

    def test_nonfinite_values_skipped(self):
        # A stray NaN/inf must not poison the bin edges (matches the
        # line renderer's skip-non-finite behavior).
        with_noise = histogram_chart([1.0, float("nan"), float("inf"), 2.0], 1.0)
        clean = histogram_chart([1.0, 2.0], 1.0)
        assert with_noise == clean

    def test_all_nonfinite_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            histogram_chart([float("nan"), float("inf")], 1.0)

    def test_clipping_marks_last_bin(self):
        out = histogram_chart(
            np.arange(100.0), bin_width=1.0, max_bins=5
        )
        # Overflow mass is folded into the final bin, flagged with '+'.
        assert "+|" in out
