"""Tests for the async backend adapters of the serving runtime."""

import asyncio

import numpy as np
import pytest

from repro.distributions import LogNormal
from repro.serving.backends import (
    AsyncBackend,
    BackendResponse,
    DriftingBackend,
    RedisBackend,
    SearchBackend,
    SimulatedBackend,
    SyntheticBackend,
)
from repro.systems.setstore import (
    SetCorpusConfig,
    SetIntersectionWorkload,
    SetStore,
)


SMALL_CORPUS = SetCorpusConfig(n_sets=50, universe=20_000, max_cardinality=18_000)


def run(coro):
    return asyncio.run(coro)


class TestSyntheticBackend:
    def test_implements_protocol(self):
        be = SyntheticBackend(LogNormal(mu=2.0, sigma=0.5), time_scale=0.0)
        assert isinstance(be, AsyncBackend)

    def test_request_returns_response(self):
        be = SyntheticBackend(
            LogNormal(mu=2.0, sigma=0.5), time_scale=0.0, rng=1
        )
        resp = run(be.request(7))
        assert isinstance(resp, BackendResponse)
        assert resp.query_id == 7
        assert resp.latency_ms > 0.0
        assert not resp.is_reissue

    def test_counters(self):
        be = SyntheticBackend(
            LogNormal(mu=2.0, sigma=0.5), time_scale=0.0, rng=1
        )

        async def go():
            await asyncio.gather(*(be.request(i) for i in range(10)))

        run(go())
        assert be.started == be.completed == 10
        assert be.cancelled == 0
        assert be.in_flight == 0
        assert be.peak_in_flight >= 1

    def test_cancellation_counted(self):
        be = SyntheticBackend(
            LogNormal(mu=4.0, sigma=0.1), time_scale=1e-3, rng=1
        )

        async def go():
            task = asyncio.create_task(be.request(0))
            await asyncio.sleep(0.005)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task

        run(go())
        assert be.cancelled == 1
        assert be.completed == 0
        assert be.in_flight == 0

    def test_separate_reissue_distribution(self):
        be = SyntheticBackend(
            LogNormal(mu=5.0, sigma=0.01),
            reissue=LogNormal(mu=1.0, sigma=0.01),
            time_scale=0.0,
            rng=1,
        )
        primary = run(be.request(0))
        reissue = run(be.request(0, is_reissue=True))
        assert primary.latency_ms > reissue.latency_ms

    def test_negative_time_scale_rejected(self):
        with pytest.raises(ValueError):
            SyntheticBackend(LogNormal(mu=2.0, sigma=0.5), time_scale=-1.0)


class TestDriftingBackend:
    def test_schedule_validation(self):
        dist = LogNormal(mu=2.0, sigma=0.5)
        with pytest.raises(ValueError):
            DriftingBackend(dist, schedule=((5, 1.0),))  # must start at 0
        with pytest.raises(ValueError):
            DriftingBackend(dist, schedule=((0, -2.0),))

    def test_scale_shifts_with_request_count(self):
        dist = LogNormal(mu=2.0, sigma=0.3)
        be = DriftingBackend(
            dist, schedule=((0, 1.0), (10, 4.0)), time_scale=0.0, rng=3
        )

        async def go(n):
            return [await be.request(i) for i in range(n)]

        first = run(go(10))
        assert be.current_scale() == 4.0
        second = run(go(10))
        m1 = np.mean([r.latency_ms for r in first])
        m2 = np.mean([r.latency_ms for r in second])
        assert m2 > 2.0 * m1  # 4x regime clearly visible

    def test_reissues_do_not_advance_schedule(self):
        dist = LogNormal(mu=2.0, sigma=0.3)
        be = DriftingBackend(
            dist, schedule=((0, 1.0), (3, 5.0)), time_scale=0.0, rng=3
        )

        async def go():
            for _ in range(5):
                await be.request(0, is_reissue=True)

        run(go())
        assert be.current_scale() == 1.0


class TestSystemBackends:
    def test_redis_backend_serves(self):
        store = SetStore.build_synthetic(SMALL_CORPUS, rng=np.random.default_rng(2))
        be = RedisBackend(
            SetIntersectionWorkload(store), time_scale=0.0, rng=1
        )
        resp = run(be.request(0))
        assert resp.latency_ms > 0.0

    def test_redis_reissue_correlated_with_primary(self):
        store = SetStore.build_synthetic(SMALL_CORPUS, rng=np.random.default_rng(2))
        be = RedisBackend(
            SetIntersectionWorkload(store), time_scale=0.0, rng=1
        )
        primary = run(be.request(42))
        reissue = run(be.request(42, is_reissue=True))
        # Same intersection on a replica: same deterministic cost, fresh
        # noise — latencies agree within the noise envelope.
        ratio = reissue.latency_ms / primary.latency_ms
        assert 0.05 < ratio < 20.0

    def test_search_backend_serves(self):
        be = SearchBackend(time_scale=0.0, rng=1)
        resp = run(be.request(0))
        assert resp.latency_ms > 0.0
        reissue = run(be.request(0, is_reissue=True))
        assert reissue.latency_ms > 0.0
        assert reissue.is_reissue

    def test_cost_cache_is_bounded(self):
        be = SearchBackend(time_scale=0.0, rng=1, cost_cache_size=4)

        async def go():
            for i in range(20):
                await be.request(i)

        run(go())
        assert len(be._primary_cost) == 4
        # An evicted query's reissue still serves (fresh cost draw).
        resp = run(be.request(0, is_reissue=True))
        assert resp.latency_ms > 0.0

    def test_cost_cache_size_validated(self):
        with pytest.raises(ValueError):
            SearchBackend(time_scale=0.0, cost_cache_size=0)

    def test_search_latencies_plausible(self):
        be = SearchBackend(time_scale=0.0, rng=1)

        async def go():
            return [
                (await be.request(i)).latency_ms for i in range(300)
            ]

        lats = np.array(run(go()))
        # The §6.3 calibration: mean ≈ 40 ms, some spread.
        assert 15.0 < lats.mean() < 90.0
        assert lats.std() > 5.0


class TestSimulatedBackendBase:
    def test_service_time_ms_abstract(self):
        be = SimulatedBackend(time_scale=0.0)
        with pytest.raises(NotImplementedError):
            run(be.request(0))

    def test_invalid_latency_rejected(self):
        class Bad(SimulatedBackend):
            def service_time_ms(self, query_id, is_reissue):
                return float("nan")

        with pytest.raises(ValueError):
            run(Bad(time_scale=0.0).request(0))
