"""Tests for the multi-process serving fleet (``repro.serving.procfleet``).

The process-spawning tests keep fleet spins to a minimum — each
``ProcessFleet`` pays a real ``spawn``-context interpreter start per
worker — and drive everything through the public front door so the wire
protocol, the socket-backed policy store, and the death accounting are
exercised exactly as ``repro loadgen --procs`` uses them.
"""

import asyncio
import json
import socket
import threading

import pytest

from repro.core.policies import SingleR
from repro.scenarios import coerce_scenario
from repro.serving.fleet import PolicyStore
from repro.serving.loadgen import (
    RECORD_VERSION,
    LoadGenerator,
    as_record,
    validate_record,
)
from repro.serving.procfleet import (
    MSG_BYE,
    MSG_REQUEST,
    MSG_RESPONSE,
    PolicyStoreServer,
    ProcessFleet,
    RemotePolicyStore,
    decode_payload,
    encode_frame,
    read_frame,
    recv_frame_blocking,
)


def quick_scenario():
    return coerce_scenario("fleet-tail-quick").check()


# ---------------------------------------------------------------------------
# Wire protocol (no processes)
# ---------------------------------------------------------------------------


class TestFraming:
    def test_json_frame_round_trip(self):
        body = {"seq": 7, "qid": 123, "latency_ms": 4.5, "pair": None}
        frame = encode_frame(MSG_REQUEST, body)
        # 4-byte length prefix + 1 type byte, then the JSON payload.
        assert frame[4] == MSG_REQUEST
        assert decode_payload(frame[4], frame[5:]) == body

    def test_pickle_frame_round_trip(self):
        from repro.serving.metrics import ServingMetrics

        metrics = ServingMetrics()
        frame = encode_frame(MSG_BYE, {"stats": {"x": 1}, "metrics": metrics})
        decoded = decode_payload(frame[4], frame[5:])
        assert decoded["stats"] == {"x": 1}
        assert decoded["metrics"].completed == 0

    def test_blocking_and_async_readers_agree(self):
        parent, child = socket.socketpair()
        try:
            body = {"seq": 1, "qid": 2}
            parent.sendall(encode_frame(MSG_RESPONSE, body))
            msg_type, decoded = recv_frame_blocking(child)
            assert (msg_type, decoded) == (MSG_RESPONSE, body)

            async def round_trip():
                reader = asyncio.StreamReader()
                reader.feed_data(encode_frame(MSG_REQUEST, body))
                reader.feed_eof()
                return await read_frame(reader)

            msg_type, decoded = asyncio.run(round_trip())
            assert (msg_type, decoded) == (MSG_REQUEST, body)
        finally:
            parent.close()
            child.close()

    def test_partial_frame_raises_on_closed_peer(self):
        parent, child = socket.socketpair()
        parent.sendall(b"\x00\x00\x00\x10\x01trunc")
        parent.close()
        with pytest.raises(ConnectionError):
            recv_frame_blocking(child)
        child.close()


# ---------------------------------------------------------------------------
# The socket-backed PolicyStore (threads only, no processes)
# ---------------------------------------------------------------------------


class TestRemotePolicyStore:
    def test_publish_propagates_between_clients(self, tmp_path):
        server = PolicyStoreServer(
            PolicyStore(SingleR(10.0, 0.5)), runtime_dir=str(tmp_path)
        )
        try:
            a = RemotePolicyStore(server.address, poll_every=1)
            b = RemotePolicyStore(server.address, poll_every=1)
            # Both see the seed publish (version 1).
            assert a.get() == (1, SingleR(10.0, 0.5))
            assert b.get() == (1, SingleR(10.0, 0.5))
            # A publish from one client reaches the other at v2, with
            # the same monotone-version + provenance semantics as the
            # in-process store.
            assert a.publish(SingleR(25.0, 0.3), source="clientA") == 2
            assert a.version == 2  # publisher's cache updates in place
            assert b.get() == (2, SingleR(25.0, 0.3))
            assert server.store.publishes == [(1, "init"), (2, "clientA")]
            a.close()
            b.close()
        finally:
            server.close()

    def test_get_serves_cache_between_polls(self, tmp_path):
        server = PolicyStoreServer(
            PolicyStore(SingleR(10.0, 0.5)), runtime_dir=str(tmp_path)
        )
        try:
            client = RemotePolicyStore(server.address, poll_every=1000)
            assert client.get()[0] == 1
            server.store.publish(SingleR(99.0, 0.1), source="direct")
            # Bounded staleness: inside the poll stride the cached
            # snapshot is served; an explicit refresh sees the publish.
            assert client.get()[0] == 1
            assert client.refresh() == (2, SingleR(99.0, 0.1))
            client.close()
        finally:
            server.close()

    def test_tcp_transport(self):
        server = PolicyStoreServer(PolicyStore(), transport="tcp")
        try:
            client = RemotePolicyStore(server.address, transport="tcp")
            assert client.get() == (0, None)
            assert client.publish(SingleR(5.0, 0.2), source="t") == 1
            client.close()
        finally:
            server.close()

    def test_unknown_transport_is_named(self):
        with pytest.raises(ValueError, match="unix, tcp"):
            PolicyStoreServer(PolicyStore(), transport="carrier-pigeon")


# ---------------------------------------------------------------------------
# The process fleet itself
# ---------------------------------------------------------------------------


class TestProcessFleet:
    def test_smoke_counters_metrics_and_record(self, tmp_path):
        scenario = quick_scenario()
        fleet = ProcessFleet(
            2,
            scenario,
            policy=scenario.build_policy(),
            time_scale=0.0,
            seed=3,
        )
        try:
            generator = LoadGenerator(fleet, rng=3)
            result = generator.run(80, mode="open", target_rps=0)
            assert result.issued == 80
            assert result.completed == 80
            assert result.transport == "unix"
            # Per-worker and merged counter identity.
            stats = fleet.stats()
            assert stats["transport"] == "unix"
            assert len(stats["per_shard"]) == 2
            for worker in stats["per_shard"]:
                assert (
                    worker["issued"]
                    == worker["completed"] + worker["shed"] + worker["errors"]
                )
                assert worker["alive"]
            pids = {worker["pid"] for worker in stats["per_shard"]}
            assert len(pids) == 2  # real processes, not threads
            # Merged metrics come from the workers' own sketches.
            merged = fleet.metrics()
            assert merged.completed == 80
            assert merged.quantile(0.99) >= merged.quantile(0.50) > 0
            # The run shapes into a valid version-2 record.
            record = as_record(result, scenario.name, {"procs": 2})
            assert record["version"] == RECORD_VERSION
            assert record["results"]["transport"] == "unix"
            assert validate_record(record) == []
            # Round-trips through JSON (the committed-artifact path).
            assert validate_record(json.loads(json.dumps(record))) == []
        finally:
            fleet.close()
        # close() is idempotent and reaps every worker.
        fleet.close()
        for worker in fleet.workers:
            assert not worker.process.is_alive()

    def test_refit_on_one_worker_reaches_every_worker(self):
        # The PR 7 acceptance test, across process boundaries: worker 0
        # carries the AutoTuner; its refit must land in the parent-side
        # store (v >= 2) and be adopted by workers 1 and 2 through their
        # RemotePolicyStore before the run ends.
        scenario = quick_scenario()
        initial = SingleR(0.0, 0.2)
        fleet = ProcessFleet(
            3,
            scenario,
            policy=initial,
            probe_fraction=0.2,
            autotune=dict(
                percentile=0.95,
                budget=0.2,
                batch_size=50,
                refit_interval=100,
                window=1_000,
                use_correlation=False,
            ),
            time_scale=0.0,
            seed=7,
        )
        try:
            generator = LoadGenerator(fleet, rng=7)
            result = generator.run(900, mode="closed", concurrency=8)
            assert result.issued == 900
            stats = fleet.stats()
            tuned = stats["per_shard"][0]
            assert tuned["refits"] >= 1, "the tuned worker never refit"
            assert fleet.store.version >= 2
            sources = [source for _, source in fleet.store.publishes]
            assert any(s.startswith("shard0:refit") for s in sources)
            fitted_spec = tuned["policy_spec"]
            for worker in stats["per_shard"][1:]:
                assert worker["store_version"] >= 2
                assert worker["policy_spec"] == fitted_spec
        finally:
            fleet.close()

    def test_worker_crash_keeps_front_door_responsive(self):
        # Kill one worker mid-run: the fleet must keep serving from the
        # survivor, never hang, and account for every issued request
        # (in-flight and rerouted-away requests count as shed).
        scenario = quick_scenario()
        fleet = ProcessFleet(
            2,
            scenario,
            policy=scenario.build_policy(),
            time_scale=1e-4,
            seed=11,
        )
        try:
            killer = threading.Timer(0.03, fleet.workers[1].kill)
            generator = LoadGenerator(fleet, rng=11)
            killer.start()
            result = generator.run(400, mode="open", target_rps=3000)
            killer.join()
            assert not fleet.workers[1].alive
            assert fleet.workers[0].alive
            assert result.issued == 400
            assert (
                result.issued
                == result.completed + result.shed + result.errors
            )
            assert result.completed > 0  # the survivor kept serving
            stats = fleet.stats()
            for worker in stats["per_shard"]:
                assert (
                    worker["issued"]
                    == worker["completed"] + worker["shed"] + worker["errors"]
                )
            # The dead worker's responses survive in the parent-side
            # shadow, so the merged counters still balance — and the
            # record of a crashed run is still schema-valid.
            record = as_record(result, scenario.name, {"procs": 2})
            assert validate_record(record) == []
        finally:
            fleet.close()

    def test_all_workers_dead_sheds_instead_of_hanging(self):
        scenario = quick_scenario()
        fleet = ProcessFleet(
            1,
            scenario,
            policy=scenario.build_policy(),
            time_scale=0.0,
            seed=5,
        )
        try:
            fleet.workers[0].kill()
            fleet.workers[0].process.join(timeout=10)

            async def drive():
                return [await fleet.request(i) for i in range(5)]

            outcomes = asyncio.run(drive())
            assert outcomes == [None] * 5
            assert fleet.shed_total == 5
        finally:
            fleet.close()

    def test_constructor_validation(self):
        scenario = quick_scenario()
        with pytest.raises(ValueError, match="n_procs"):
            ProcessFleet(0, scenario)
        with pytest.raises(ValueError, match="unix, tcp"):
            ProcessFleet(1, scenario, transport="smoke-signal")
