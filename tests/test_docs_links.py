"""Internal links in the documentation must resolve.

Scans README.md and every docs/*.md for markdown links; relative links
(no scheme) must point at a file or directory that exists, anchor
fragments stripped. External http(s) links are not fetched.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def doc_files():
    docs = sorted((REPO_ROOT / "docs").glob("*.md"))
    return [REPO_ROOT / "README.md", *docs]


def relative_links(path: Path):
    for target in _LINK.findall(path.read_text()):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
            continue
        if target.startswith("#"):  # in-page anchor
            continue
        yield target


def test_docs_directory_is_populated():
    names = {p.name for p in doc_files()}
    assert {"architecture.md", "paper_map.md", "serving.md"} <= names


@pytest.mark.parametrize("doc", doc_files(), ids=lambda p: p.name)
def test_relative_links_resolve(doc):
    broken = []
    for target in relative_links(doc):
        resolved = (doc.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{doc.relative_to(REPO_ROOT)} has broken links: {broken}"


@pytest.mark.parametrize("doc", doc_files(), ids=lambda p: p.name)
def test_backticked_repo_paths_exist(doc):
    """Paths named in backticks like `src/repro/...` or `tests/...` must
    exist — docs that cite modules rot fastest."""
    text = doc.read_text()
    cited = re.findall(
        r"`((?:src|tests|docs|benchmarks|examples)/[\w./-]+?)`", text
    )
    missing = sorted(
        {c for c in cited if not (REPO_ROOT / c.split("::")[0]).exists()}
    )
    assert not missing, (
        f"{doc.relative_to(REPO_ROOT)} cites paths that do not exist: "
        f"{missing}"
    )
