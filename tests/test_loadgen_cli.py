"""Tests for ``repro loadgen`` and the BENCH_serving.json record schema."""

import json

import pytest

from repro.main import main
from repro.serving.loadgen import RECORD_KIND, RECORD_VERSION, validate_record

QUICK = [
    "loadgen",
    "fleet-tail-quick",
    "--requests", "80",
    "--rps", "0",
    "--time-scale", "0",
    "--seed", "3",
]


def run_quick(tmp_path, *extra):
    out = tmp_path / "BENCH_serving.json"
    rc = main([*QUICK, "--out", str(out), *extra])
    return rc, out


class TestLoadgenRuns:
    def test_smoke_writes_valid_record(self, tmp_path, capsys):
        rc, out = run_quick(tmp_path)
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "p99" in stdout
        assert f"wrote {out}" in stdout
        record = json.loads(out.read_text())
        assert validate_record(record) == []
        assert record["results"]["issued"] == 80
        assert record["results"]["shards"] == 2
        assert record["scenario"] == "fleet-tail-quick"

    def test_no_write_skips_the_record(self, tmp_path, capsys):
        rc, out = run_quick(tmp_path, "--no-write")
        assert rc == 0
        assert not out.exists()
        assert "wrote" not in capsys.readouterr().out

    def test_json_output_is_the_record(self, tmp_path, capsys):
        rc, _ = run_quick(tmp_path, "--json", "--no-write")
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        assert record["kind"] == RECORD_KIND
        assert record["version"] == RECORD_VERSION
        assert validate_record(record) == []

    def test_closed_loop_run(self, tmp_path, capsys):
        out = tmp_path / "b.json"
        rc = main(
            [
                "loadgen", "fleet-tail-quick",
                "--mode", "closed", "--users", "4",
                "--requests", "60", "--time-scale", "0",
                "--out", str(out),
            ]
        )
        assert rc == 0
        record = json.loads(out.read_text())
        assert validate_record(record) == []
        assert record["config"]["mode"] == "closed"
        assert record["config"]["users"] == 4

    def test_chaos_spike_is_reported(self, tmp_path, capsys):
        rc, _ = run_quick(
            tmp_path, "--no-write", "--chaos-spike", "10", "--chaos-prob", "1"
        )
        assert rc == 0
        assert "chaos on shard 0" in capsys.readouterr().out

    def test_autotune_reports_store_version(self, tmp_path, capsys):
        rc, _ = run_quick(tmp_path, "--no-write", "--autotune")
        assert rc == 0
        assert "policy refits" in capsys.readouterr().out

    def test_procs_smoke_writes_valid_v2_record(self, tmp_path, capsys):
        rc, out = run_quick(tmp_path, "--procs", "2")
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "worker process(es)" in stdout
        record = json.loads(out.read_text())
        assert validate_record(record) == []
        assert record["version"] == RECORD_VERSION
        assert record["results"]["transport"] == "unix"
        assert record["results"]["issued"] == 80
        assert record["config"]["procs"] == 2
        for shard in record["results"]["per_shard"]:
            assert (
                shard["issued"]
                == shard["completed"] + shard["shed"] + shard["errors"]
            )


class TestLoadgenArgumentErrors:
    """Errors must name the offending flag, not raise a bare KeyError."""

    def err(self, capsys, *argv):
        rc = main(["loadgen", *argv])
        assert rc == 2
        return capsys.readouterr().err

    def test_unknown_selector_names_flag_and_lists_strategies(self, capsys):
        err = self.err(capsys, "--select", "zebra")
        assert "--select" in err
        assert "'zebra'" in err
        for name in ("hash", "least-loaded", "round-robin"):
            assert name in err

    def test_rps_rejected_in_closed_mode(self, capsys):
        err = self.err(capsys, "--mode", "closed", "--rps", "100")
        assert "--rps" in err and "--mode open" in err

    def test_users_rejected_in_open_mode(self, capsys):
        err = self.err(capsys, "--mode", "open", "--users", "4")
        assert "--users" in err and "--mode closed" in err

    def test_bad_shards(self, capsys):
        assert "--shards" in self.err(capsys, "--shards", "0")

    def test_negative_rps(self, capsys):
        assert "--rps" in self.err(capsys, "--rps", "-5")

    def test_chaos_spike_below_one(self, capsys):
        assert "--chaos-spike" in self.err(capsys, "--chaos-spike", "0.5")

    def test_chaos_prob_out_of_range(self, capsys):
        assert "--chaos-prob" in self.err(capsys, "--chaos-prob", "1.5")

    def test_unknown_scenario(self, capsys):
        err = self.err(capsys, "no-such-scenario", "--no-write")
        assert "no-such-scenario" in err

    def test_procs_below_one(self, capsys):
        assert "--procs" in self.err(capsys, "--procs", "0")

    def test_transport_requires_procs(self, capsys):
        err = self.err(capsys, "--transport", "unix")
        assert "--transport" in err and "--procs" in err

    def test_unknown_transport_lists_valid_values(self, capsys):
        err = self.err(capsys, "--procs", "2", "--transport", "osmosis")
        assert "--transport" in err
        assert "'osmosis'" in err
        assert "unix" in err and "tcp" in err

    def test_chaos_spike_rejected_with_procs(self, capsys):
        err = self.err(capsys, "--procs", "2", "--chaos-spike", "10")
        assert "--chaos-spike" in err and "--procs" in err


class TestValidateRecord:
    @pytest.fixture
    def record(self, tmp_path):
        rc, out = run_quick(tmp_path)
        assert rc == 0
        return json.loads(out.read_text())

    def test_valid_record_has_no_problems(self, record):
        assert validate_record(record) == []

    def test_wrong_kind(self, record):
        record["kind"] = "other"
        assert any("kind" in p for p in validate_record(record))

    def test_counter_identity_enforced(self, record):
        record["results"]["shed"] += 1
        problems = validate_record(record)
        assert any("issued" in p for p in problems)

    def test_quantiles_must_be_ordered(self, record):
        record["results"]["quantiles_ms"]["p50"] = 1e9
        assert any("quantile" in p.lower() for p in validate_record(record))

    def test_per_shard_length_must_match(self, record):
        record["results"]["per_shard"].append({})
        assert any("per_shard" in p for p in validate_record(record))

    def test_non_dict_rejected(self):
        assert validate_record([]) != []

    def test_in_loop_run_records_loop_transport(self, record):
        assert record["version"] == RECORD_VERSION
        assert record["results"]["transport"] == "loop"

    def test_unknown_transport_value_rejected(self, record):
        record["results"]["transport"] = "semaphore-flags"
        assert any("transport" in p for p in validate_record(record))

    def test_per_shard_identity_enforced_v2(self, record):
        record["results"]["per_shard"][0]["issued"] += 1
        problems = validate_record(record)
        assert any("per_shard[0]" in p for p in problems)

    def test_legacy_v1_record_still_validates(self, record):
        # A pre-transport record (as committed by earlier revisions):
        # no results.transport, no per-shard issued counters.
        record["version"] = 1
        del record["results"]["transport"]
        for shard in record["results"]["per_shard"]:
            del shard["issued"]
        assert validate_record(record) == []

    def test_unknown_version_rejected(self, record):
        record["version"] = 3
        assert any("version" in p for p in validate_record(record))


class TestLoadgenStore:
    def test_store_flag_appends_latencies(self, tmp_path, capsys):
        import numpy as np

        from repro.store import TraceReader, sort_trace, EmpiricalStore

        store = tmp_path / "lat.store"
        rc, _ = run_quick(tmp_path, "--no-write", "--store", str(store))
        assert rc == 0
        assert f"to {store}" in capsys.readouterr().out
        reader = TraceReader(store)
        n_first = reader.total_records
        assert 0 < n_first <= 80
        assert np.all(reader.read_segment("primary") >= 0.0)

        # A second run appends to the same store.
        rc, _ = run_quick(tmp_path, "--no-write", "--store", str(store))
        assert rc == 0
        assert TraceReader(store).total_records == 2 * n_first

        # The collected log is fit-ready once sorted.
        sort_trace(store, tmp_path / "lat.sorted.store")
        dist = EmpiricalStore(tmp_path / "lat.sorted.store")
        assert len(dist) == 2 * n_first
