"""Unit tests for the ChaosBackend fault-injection wrapper."""

import asyncio

import numpy as np
import pytest

from repro.distributions import Deterministic
from repro.serving.backends import SyntheticBackend
from repro.serving.chaos import ChaosBackend, ChaosError


def chaos(latency=10.0, time_scale=0.0, rng=None):
    return ChaosBackend(
        SyntheticBackend(Deterministic(latency), time_scale=time_scale),
        rng=rng,
    )


def request(backend, query_id=0, is_reissue=False):
    return asyncio.run(backend.request(query_id, is_reissue=is_reissue))


class TestTransparency:
    def test_no_faults_passes_through(self):
        backend = chaos()
        resp = request(backend, 7)
        assert resp.query_id == 7
        assert resp.latency_ms == pytest.approx(10.0)
        assert backend.requests_seen == 1
        assert backend.spiked == 0
        assert backend.inner.completed == 1

    def test_time_scale_delegates_to_inner(self):
        backend = chaos(time_scale=2e-4)
        assert backend.time_scale == pytest.approx(2e-4)


class TestSpike:
    def test_multiplicative_and_additive_penalty(self):
        backend = chaos()
        backend.spike(factor=3.0, add_ms=5.0)
        resp = request(backend)
        assert resp.latency_ms == pytest.approx(10.0 * 3.0 + 5.0)
        assert backend.spiked == 1

    def test_probabilistic_spike_hits_roughly_prob(self):
        backend = chaos(rng=np.random.default_rng(11))
        backend.spike(factor=2.0, prob=0.3)
        for i in range(400):
            request(backend, i)
        assert backend.spiked == pytest.approx(120, abs=40)

    def test_primary_only_spares_reissues(self):
        backend = chaos()
        backend.spike(factor=4.0, prob=1.0, primary_only=True)
        assert request(backend, is_reissue=False).latency_ms == pytest.approx(
            40.0
        )
        assert request(backend, is_reissue=True).latency_ms == pytest.approx(
            10.0
        )

    def test_spike_is_realized_on_the_wall_clock(self):
        # The extra latency must genuinely slow the attempt (so reissue
        # timers fire against it), not just inflate the reported number.
        backend = chaos(time_scale=1e-3)
        backend.spike(add_ms=30.0)

        async def timed():
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            resp = await backend.request(0)
            return resp, loop.time() - t0

        resp, wall = asyncio.run(timed())
        assert resp.latency_ms == pytest.approx(40.0)
        assert wall >= 0.035  # 40 model ms at 1e-3 wall/model-ms

    def test_validation(self):
        backend = chaos()
        with pytest.raises(ValueError):
            backend.spike(factor=0.5)
        with pytest.raises(ValueError):
            backend.spike(add_ms=-1.0)
        with pytest.raises(ValueError):
            backend.spike(prob=1.5)


class TestErrorBurst:
    def test_burst_fails_exactly_n_attempts(self):
        backend = chaos()
        backend.error_burst(2)
        for _ in range(2):
            with pytest.raises(ChaosError):
                request(backend)
        resp = request(backend)
        assert resp.latency_ms == pytest.approx(10.0)
        assert backend.errors_injected == 2
        assert backend.error_burst_remaining == 0

    def test_negative_burst_rejected(self):
        with pytest.raises(ValueError):
            chaos().error_burst(-1)


class TestBlackout:
    def test_blackout_hangs_until_cancelled(self):
        backend = chaos(time_scale=1e-4)
        backend.blackout()

        async def attempt():
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(backend.request(0), timeout=0.05)

        asyncio.run(attempt())
        assert backend.blackholed == 1
        # The inner backend never even started the attempt.
        assert backend.inner.started == 0

    def test_heal_restores_service(self):
        backend = chaos()
        backend.blackout()
        backend.error_burst(5)
        backend.spike(factor=9.0)
        backend.skew(2.0)
        backend.heal()
        resp = request(backend)
        assert resp.latency_ms == pytest.approx(10.0)


class TestSkew:
    def test_skew_accumulates_per_attempt(self):
        backend = chaos()
        backend.skew(1.5)
        observed = [request(backend, i).latency_ms for i in range(3)]
        assert observed == pytest.approx([11.5, 13.0, 14.5])
        # Skew is telemetry-only: the inner backend served at 10 ms.
        assert backend.inner.completed == 3

    def test_negative_skew_clamps_at_zero(self):
        backend = chaos(latency=1.0)
        backend.skew(-5.0)
        assert request(backend).latency_ms == 0.0
