"""Tests for the Lucene substrate (inverted index + search workload, §6.3)."""

import numpy as np
import pytest

from repro.systems.search_engine import (
    InvertedIndex,
    SearchCorpusConfig,
    SearchWorkload,
    document_frequencies,
    zipf_probabilities,
)


class TestZipfModel:
    def test_probabilities_normalized_and_decreasing(self):
        p = zipf_probabilities(1000, 1.05)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(np.diff(p) <= 0)

    def test_document_frequencies_bounded(self):
        cfg = SearchCorpusConfig()
        df = document_frequencies(cfg)
        assert df.shape == (cfg.vocab_size,)
        assert df.max() <= cfg.n_docs
        assert df.min() > 0

    def test_stopword_df_near_corpus_size(self):
        cfg = SearchCorpusConfig()
        df = document_frequencies(cfg)
        assert df[0] > 0.9 * cfg.n_docs  # rank-1 term is everywhere


class TestInvertedIndex:
    @pytest.fixture(scope="class")
    def index(self):
        return InvertedIndex.build_synthetic(
            n_docs=300, rng=np.random.default_rng(0)
        )

    def test_build_indexes_all_docs(self, index):
        assert index.n_docs == 300
        assert index.vocab_size > 100

    def test_postings_sorted_unique(self, index):
        # rank-0 term appears in nearly every doc
        p = index.postings(0)
        assert p.size > 250
        assert np.all(np.diff(p) > 0)

    def test_missing_term_empty(self, index):
        assert index.postings(10**9).size == 0
        assert index.df(10**9) == 0

    def test_scanned_postings_additive(self, index):
        assert index.scanned_postings([0, 1]) == index.df(0) + index.df(1)

    def test_search_returns_ranked_results(self, index):
        hits = index.search([5, 17], k=10)
        assert 0 < len(hits) <= 10
        scores = [s for _, s in hits]
        assert scores == sorted(scores, reverse=True)

    def test_search_rare_term_ranks_containing_doc_first(self):
        idx = InvertedIndex()
        idx.add_document(0, [1, 1, 1, 99])
        idx.add_document(1, [1, 2, 3, 4])
        idx.freeze()
        hits = idx.search([99], k=2)
        assert hits[0][0] == 0 and len(hits) == 1

    def test_duplicate_doc_rejected(self):
        idx = InvertedIndex()
        idx.add_document(0, [1])
        with pytest.raises(ValueError):
            idx.add_document(0, [2])

    def test_frozen_index_rejects_adds(self):
        idx = InvertedIndex()
        idx.add_document(0, [1])
        idx.freeze()
        with pytest.raises(RuntimeError):
            idx.add_document(1, [2])

    def test_measured_df_tracks_analytic_model(self, index):
        # Measured document frequency of the top term should be close to
        # the analytic large-corpus model scaled to n_docs.
        cfg = SearchCorpusConfig()
        analytic = document_frequencies(cfg) / cfg.n_docs
        measured = index.df(0) / index.n_docs
        assert measured == pytest.approx(float(analytic[0]), abs=0.1)


class TestSearchWorkload:
    @pytest.fixture(scope="class")
    def workload(self):
        return SearchWorkload()

    def test_calibrated_mean(self, workload):
        assert workload.mean_service() == pytest.approx(39.73, rel=1e-6)
        sample = workload.sample_primary(30_000, np.random.default_rng(0))
        assert sample.mean() == pytest.approx(39.73, rel=0.1)

    def test_paper_profile_shape(self, workload):
        s = workload.sample_primary(40_000, np.random.default_rng(1))
        assert s.std() == pytest.approx(21.88, rel=0.35)
        assert ((s >= 1) & (s <= 70)).mean() > 0.8  # "~90% between 1-70ms"
        assert 0.002 < (s > 100).mean() < 0.05  # "~1% above 100ms"

    def test_query_lengths_within_bounds(self, workload):
        lengths, flat = workload.sample_queries(5000, np.random.default_rng(2))
        assert lengths.min() >= workload.config.min_terms
        assert lengths.max() <= workload.config.max_terms
        assert flat.size == lengths.sum()
        assert lengths.mean() == pytest.approx(workload.config.mean_terms, abs=0.1)

    def test_cost_vectorization_matches_manual(self, workload):
        lengths = np.array([2, 1])
        flat = np.array([0, 1, 2])
        cost = workload.cost_ms(lengths, flat)
        w = workload._work
        manual0 = workload.overhead_ms + (w[0] + w[1]) / workload.work_per_ms
        manual1 = workload.overhead_ms + w[2] / workload.work_per_ms
        assert cost[0] == pytest.approx(manual0)
        assert cost[1] == pytest.approx(manual1)

    def test_reissue_redraws_noise(self):
        w = SearchWorkload(exec_noise_sigma=0.5)
        det = w.sample_det(100, np.random.default_rng(0))
        w._last_det = det
        ys = [w.sample_reissue_for(3, np.random.default_rng(i)) for i in range(30)]
        assert np.std(ys) > 0  # noise varies
        assert np.mean(ys) == pytest.approx(det[3], rel=0.3)  # unit-mean noise

    def test_reissue_for_requires_primary_first(self):
        w = SearchWorkload()
        w._last_det = None
        with pytest.raises(RuntimeError):
            w.sample_reissue_for(0)

    def test_zero_noise_reissue_deterministic(self):
        w = SearchWorkload(exec_noise_sigma=0.0)
        w.sample_primary(10, np.random.default_rng(0))
        y1 = w.sample_reissue_for(2, np.random.default_rng(1))
        y2 = w.sample_reissue_for(2, np.random.default_rng(99))
        assert y1 == y2

    def test_freeze_trace_fixes_deterministic_costs(self):
        w = SearchWorkload()
        frozen = w.freeze_trace(200, np.random.default_rng(0))
        a = w.sample_primary(200, np.random.default_rng(1))
        b = w.sample_primary(200, np.random.default_rng(1))
        assert np.array_equal(a, b)
        # noise applies on top of the frozen deterministic costs
        c = w.sample_primary(200, np.random.default_rng(2))
        assert not np.array_equal(a, c)
        assert np.array_equal(w.sample_det(200), frozen)

    def test_hard_queries_rare_but_present(self):
        w = SearchWorkload(exec_noise_sigma=0.0)
        s = w.sample_det(100_000, np.random.default_rng(3))
        base_max = SearchWorkload(
            hard_query_fraction=0.0, exec_noise_sigma=0.0
        ).sample_det(100_000, np.random.default_rng(3)).max()
        assert s.max() > base_max * 1.5  # hard multiplier visible in tail

    def test_validation(self):
        with pytest.raises(ValueError):
            SearchWorkload(scan_exponent=0.0)
        with pytest.raises(ValueError):
            SearchWorkload(target_mean_ms=1.0, overhead_ms=2.0)
        with pytest.raises(ValueError):
            SearchWorkload(hard_query_fraction=1.5)
        with pytest.raises(ValueError):
            SearchWorkload(exec_noise_sigma=-0.1)
        with pytest.raises(ValueError):
            SearchCorpusConfig(min_terms=3, max_terms=2)
