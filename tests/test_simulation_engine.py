"""Tests for the discrete-event cluster engine (paper §5)."""

import numpy as np
import pytest

from repro.core.policies import ImmediateReissue, NoReissue, SingleD, SingleR
from repro.distributions import Exponential, Pareto, Uniform
from repro.simulation.arrivals import PoissonArrivals
from repro.simulation.engine import ClusterConfig, simulate_cluster
from repro.simulation.workloads import ServiceModel


def make_config(**over):
    defaults = dict(
        arrivals=PoissonArrivals(1.0),
        service_model=ServiceModel(Exponential(1.0)),
        n_queries=2000,
        n_servers=4,
        warmup_fraction=0.0,
    )
    defaults.update(over)
    return ClusterConfig(**defaults)


class TestConfigValidation:
    def test_rejects_zero_queries(self):
        with pytest.raises(ValueError):
            make_config(n_queries=0)

    def test_rejects_zero_servers(self):
        with pytest.raises(ValueError):
            make_config(n_servers=0)

    def test_rejects_missing_rate_spec(self):
        with pytest.raises(ValueError):
            make_config(arrivals=None, target_utilization=None)

    def test_rejects_bad_utilization(self):
        with pytest.raises(ValueError):
            make_config(arrivals=None, target_utilization=1.2)

    def test_rejects_bad_warmup(self):
        with pytest.raises(ValueError):
            make_config(warmup_fraction=0.7)


class TestConservation:
    """Every query must complete exactly once; reissues are accounted."""

    def test_all_queries_complete(self):
        run = simulate_cluster(make_config(), NoReissue(), 0)
        assert run.n_queries == 2000
        assert np.all(run.latencies >= 0)
        assert np.all(np.isfinite(run.latencies))

    def test_no_reissue_means_no_pairs(self):
        run = simulate_cluster(make_config(), NoReissue(), 0)
        assert run.reissue_rate == 0.0
        assert run.reissue_pair_x.size == 0

    def test_latency_never_exceeds_primary_response(self):
        run = simulate_cluster(make_config(), SingleR(0.5, 0.5), 0)
        assert np.all(run.latencies <= run.primary_response_times + 1e-9)

    def test_immediate_reissue_rate_is_one(self):
        run = simulate_cluster(make_config(), ImmediateReissue(), 0)
        assert run.reissue_rate == pytest.approx(1.0)

    def test_reissue_rate_respects_eq4_upper_bound(self):
        # Rate = q * Pr(no response by d) <= q.
        q = 0.3
        run = simulate_cluster(make_config(), SingleR(0.0, q), 0)
        assert run.reissue_rate <= q + 0.03

    def test_pair_logs_have_equal_length(self):
        run = simulate_cluster(make_config(), SingleR(0.2, 0.8), 1)
        assert run.reissue_pair_x.shape == run.reissue_pair_y.shape
        assert run.reissue_pair_x.size > 0


class TestUtilization:
    def test_target_utilization_is_hit(self):
        cfg = make_config(
            arrivals=None,
            target_utilization=0.4,
            n_queries=20_000,
            service_model=ServiceModel(Uniform(0.5, 1.5)),
        )
        run = simulate_cluster(cfg, NoReissue(), 3)
        assert run.utilization == pytest.approx(0.4, abs=0.05)

    def test_reissues_increase_utilization(self):
        cfg = make_config(
            arrivals=None,
            target_utilization=0.3,
            n_queries=20_000,
            service_model=ServiceModel(Uniform(0.5, 1.5)),
        )
        base = simulate_cluster(cfg, NoReissue(), 3)
        dup = simulate_cluster(cfg, ImmediateReissue(), 3)
        assert dup.utilization > base.utilization * 1.5

    def test_busy_fraction_below_one(self):
        run = simulate_cluster(make_config(), ImmediateReissue(2), 0)
        assert 0.0 < run.utilization <= 1.0


class TestReissueSemantics:
    def test_completed_queries_not_reissued(self):
        # With a huge delay, nothing is outstanding: no reissues dispatched.
        cfg = make_config(service_model=ServiceModel(Uniform(0.1, 0.2)))
        run = simulate_cluster(cfg, SingleD(1e9), 0)
        assert run.reissue_rate == 0.0

    def test_delayed_reissue_dispatch_times(self):
        # Eq. 2 with load feedback (§4.3): the measured budget equals
        # Pr(latency > d) *under the policy itself* — at least the
        # no-reissue fraction (extra load only inflates latencies) and
        # matching the policy run's own outstanding fraction exactly.
        cfg = make_config(n_queries=20_000)
        d = 1.0
        base = simulate_cluster(cfg, NoReissue(), 5)
        frac_base = float((base.latencies > d).mean())
        run = simulate_cluster(cfg, SingleD(d), 5)
        frac_self = float((run.latencies > d).mean())
        assert run.reissue_rate >= frac_base - 0.02
        assert run.reissue_rate == pytest.approx(frac_self, abs=0.02)

    def test_reissue_reduces_tail_in_light_load(self):
        # Median over seed-paired runs, like the paper's §6.3 protocol:
        # a single Pareto(1.1) run's P99 is dominated by whoever queued
        # behind the trace's one or two giant jobs, so single-run
        # comparisons flip sign on unlucky seeds.
        cfg = make_config(
            arrivals=None,
            target_utilization=0.05,
            n_queries=20_000,
            service_model=ServiceModel(Pareto(1.1, 2.0)),
        )
        seeds = (7, 8, 9)
        base = np.median(
            [simulate_cluster(cfg, NoReissue(), s).tail(0.99) for s in seeds]
        )
        hedged = np.median(
            [
                simulate_cluster(cfg, ImmediateReissue(), s).tail(0.99)
                for s in seeds
            ]
        )
        assert hedged < base

    def test_multistage_policy_runs(self):
        from repro.core.policies import MultipleR

        pol = MultipleR([(0.5, 0.3), (1.5, 0.3)])
        run = simulate_cluster(make_config(), pol, 0)
        assert run.meta["n_reissues_total"] >= 0


class TestWarmup:
    def test_warmup_trims_measurement_window(self):
        cfg = make_config(warmup_fraction=0.25, n_queries=1000)
        run = simulate_cluster(cfg, NoReissue(), 0)
        assert run.n_queries == 750
        assert run.meta["n_measured"] == 750

    def test_determinism_same_seed(self):
        a = simulate_cluster(make_config(), SingleR(0.5, 0.5), 11)
        b = simulate_cluster(make_config(), SingleR(0.5, 0.5), 11)
        assert np.array_equal(a.latencies, b.latencies)
        assert a.reissue_rate == b.reissue_rate

    def test_different_seeds_differ(self):
        a = simulate_cluster(make_config(), NoReissue(), 1)
        b = simulate_cluster(make_config(), NoReissue(), 2)
        assert not np.array_equal(a.latencies, b.latencies)
