"""The README's quickstart snippets must be copy-paste runnable.

Doctest-style guard against documentation drift: every fenced
``python`` block in README.md is executed in a subprocess exactly as a
reader would paste it (only ``PYTHONPATH=src`` set, as the quickstart
instructs). A snippet that imports a renamed symbol, or silently relies
on state the reader doesn't have, fails this test.
"""

import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_snippets():
    return _FENCE.findall(README.read_text())


def test_readme_has_python_snippets():
    assert len(python_snippets()) >= 2


@pytest.mark.parametrize(
    "idx", range(len(_FENCE.findall(README.read_text())))
)
def test_readme_snippet_runs(idx):
    snippet = python_snippets()[idx]
    proc = subprocess.run(
        [sys.executable, "-c", snippet],
        cwd=REPO_ROOT,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"README python snippet #{idx} is not copy-paste runnable:\n"
        f"--- snippet ---\n{snippet}\n--- stderr ---\n{proc.stderr}"
    )


def test_readme_documents_both_console_scripts():
    text = README.read_text()
    assert "repro-experiment" in text
    assert "repro-serve" in text


def test_readme_quickstart_cli_lines_point_at_real_modules():
    """Every `python -m repro...` invocation in the README names an
    importable module (catches renamed CLIs without running them)."""
    import importlib.util

    text = README.read_text()
    modules = set(re.findall(r"python -m ([\w.]+)", text))
    assert modules  # the quickstart must show module invocations
    for mod in modules:
        assert importlib.util.find_spec(mod) is not None, (
            f"README references `python -m {mod}` but that module "
            "does not exist"
        )
