"""EmpiricalStore: the out-of-core twin of Empirical, plus external sort."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Empirical
from repro.store import (
    EmpiricalStore,
    StoreEmptyError,
    StoreNotSortedError,
    TraceWriter,
    sort_trace,
)
from repro.store.mmapdist import _merge_reference


def write_sorted_store(path, samples, *, block_records=64):
    with TraceWriter(path, block_records=block_records, sorted=True) as w:
        w.append(np.sort(np.asarray(samples, dtype=np.float64)))
    return path


@pytest.fixture
def store_pair(tmp_path, rng):
    """(EmpiricalStore, Empirical) over the same 2000-sample log."""
    samples = rng.lognormal(2.0, 0.6, 2000)
    path = write_sorted_store(tmp_path / "t.store", samples)
    return EmpiricalStore(path), Empirical(samples)


class TestQuerySurface:
    def test_cdf_matches_in_memory(self, store_pair, rng):
        store, mem = store_pair
        xs = rng.uniform(0.0, 60.0, 200)
        np.testing.assert_array_equal(store.cdf(xs), mem.cdf(xs))

    def test_quantile_matches_in_memory(self, store_pair):
        store, mem = store_pair
        ps = np.linspace(0.0, 1.0, 101)
        np.testing.assert_array_equal(store.quantile(ps), mem.quantile(ps))

    def test_moments_and_extremes(self, store_pair):
        store, mem = store_pair
        assert store.mean() == pytest.approx(mem.mean())
        assert store.variance() == pytest.approx(mem.variance())
        assert store.min() == mem.sorted_samples[0]
        assert store.max() == mem.sorted_samples[-1]
        assert len(store) == len(mem.sorted_samples)

    def test_bootstrap_sample_matches_seeded(self, store_pair):
        store, mem = store_pair
        a = store.sample(100, np.random.default_rng(7))
        b = mem.sample(100, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_quantile_rejects_out_of_range(self, store_pair):
        store, _ = store_pair
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            store.quantile(1.5)

    def test_to_memory_round_trip(self, store_pair):
        store, mem = store_pair
        np.testing.assert_array_equal(
            store.to_memory().sorted_samples, mem.sorted_samples
        )

    def test_release_is_safe_and_map_still_valid(self, store_pair):
        store, mem = store_pair
        store.release()
        np.testing.assert_array_equal(
            np.asarray(store.sorted_samples), mem.sorted_samples
        )

    @settings(max_examples=30, deadline=None)
    @given(
        samples=st.lists(
            st.floats(0.0, 1e6, allow_nan=False), min_size=1, max_size=200
        ),
        p=st.floats(0.0, 1.0),
    )
    def test_cdf_quantile_agree_with_empirical(self, tmp_path_factory, samples, p):
        tmp = tmp_path_factory.mktemp("hyp")
        path = write_sorted_store(tmp / "h.store", samples, block_records=16)
        store = EmpiricalStore(path)
        mem = Empirical(samples)
        assert float(store.quantile(p)) == float(mem.quantile(p))
        for x in samples[:20]:
            assert float(store.cdf(x)) == float(mem.cdf(x))
        store.close()


class TestGuards:
    def test_unsorted_store_is_named_error(self, tmp_path, rng):
        path = tmp_path / "u.store"
        with TraceWriter(path, block_records=16) as w:
            w.append(rng.exponential(5.0, 100))
        with pytest.raises(StoreNotSortedError, match="repro store sort"):
            EmpiricalStore(path)

    def test_lying_sorted_flag_is_caught(self, tmp_path, rng):
        # Mark sorted but write descending blocks: the per-block min/max
        # monotonicity check in the sidecar exposes the lie at open.
        path = tmp_path / "lie.store"
        with TraceWriter(path, block_records=16, sorted=True) as w:
            w.append(np.sort(rng.exponential(5.0, 64))[::-1].copy())
        with pytest.raises(StoreNotSortedError, match="marked sorted"):
            EmpiricalStore(path)

    def test_empty_store_is_named_error(self, tmp_path):
        path = tmp_path / "e.store"
        with TraceWriter(path, sorted=True):
            pass
        with pytest.raises(StoreEmptyError, match="at least one sample"):
            EmpiricalStore(path)

    def test_wide_segment_rejected(self, tmp_path, rng):
        path = tmp_path / "w.store"
        with TraceWriter(path, block_records=16, sorted=True) as w:
            w.append(np.sort(rng.exponential(5.0, 32)))
            w.begin_segment("pairs", 2)
            w.append(rng.exponential(5.0, (8, 2)))
        with pytest.raises(StoreNotSortedError, match="width"):
            EmpiricalStore(path, segment="pairs")


class TestExternalSort:
    def test_sort_trace_matches_np_sort(self, tmp_path, rng):
        samples = rng.lognormal(2.0, 0.6, 5000)
        src = tmp_path / "u.store"
        with TraceWriter(src, block_records=64) as w:
            w.append(samples)
        dst = tmp_path / "s.store"
        reader = sort_trace(src, dst, run_records=256, merge_chunk=128)
        assert reader.sorted
        np.testing.assert_array_equal(
            reader.read_segment("primary"), np.sort(samples)
        )

    def test_sorted_store_feeds_empirical(self, tmp_path, rng):
        samples = rng.exponential(5.0, 3000)
        src = tmp_path / "u.store"
        with TraceWriter(src, block_records=64) as w:
            w.append(samples)
        sort_trace(src, tmp_path / "s.store", run_records=512)
        store = EmpiricalStore(tmp_path / "s.store")
        mem = Empirical(samples)
        ps = np.linspace(0.01, 0.99, 50)
        np.testing.assert_array_equal(store.quantile(ps), mem.quantile(ps))

    def test_sort_copies_other_segments_through(self, tmp_path, rng):
        src = tmp_path / "u.store"
        pairs = rng.exponential(5.0, (30, 2))
        with TraceWriter(src, block_records=16) as w:
            w.append(rng.exponential(5.0, 200))
            w.begin_segment("pairs", 2)
            w.append(pairs)
        reader = sort_trace(src, tmp_path / "s.store", run_records=64)
        np.testing.assert_array_equal(reader.read_segment("pairs"), pairs)

    def test_merge_reference_agrees(self, rng):
        arrays = [np.sort(rng.exponential(5.0, n)) for n in (17, 3, 40)]
        merged = _merge_reference(arrays)
        np.testing.assert_array_equal(merged, np.sort(np.concatenate(arrays)))

    @settings(max_examples=20, deadline=None)
    @given(
        samples=st.lists(
            st.floats(0.0, 1e9, allow_nan=False), min_size=1, max_size=300
        )
    )
    def test_sort_trace_hypothesis(self, tmp_path_factory, samples):
        tmp = tmp_path_factory.mktemp("sort")
        src = tmp / "u.store"
        with TraceWriter(src, block_records=16) as w:
            w.append(np.asarray(samples, dtype=np.float64))
        reader = sort_trace(src, tmp / "s.store", run_records=32, merge_chunk=8)
        np.testing.assert_array_equal(
            reader.read_segment("primary"), np.sort(samples)
        )
        reader.close()
