"""The packed-binary store format: header, blocks, sidecar, failure modes."""

import json
import os
import struct

import numpy as np
import pytest

from repro.obs.metrics import get_metrics
from repro.store import (
    DEFAULT_BLOCK_RECORDS,
    FORMAT_VERSION,
    StoreChecksumError,
    StoreEndiannessError,
    StoreError,
    StoreFormatError,
    StoreTruncatedError,
    StoreVersionError,
    TraceReader,
    TraceWriter,
    sidecar_path,
)

# Header layout (format.py): magic 8s @0, version I @8, byte-order mark
# I @12, dtype 8s @16, block_records Q @24, total Q @32, flags I @40.
_VERSION_OFF = 8
_BOM_OFF = 12
HEADER_BYTES = 64


def write_store(path, samples, *, block_records=16, sorted=False):
    with TraceWriter(
        path, block_records=block_records, sorted=sorted
    ) as writer:
        writer.append(np.asarray(samples, dtype=np.float64))
    return path


def patch_bytes(path, offset, raw):
    data = bytearray(path.read_bytes())
    data[offset : offset + len(raw)] = raw
    path.write_bytes(bytes(data))


class TestRoundTrip:
    def test_write_read_round_trip(self, tmp_path, rng):
        samples = rng.exponential(5.0, 1000)
        path = write_store(tmp_path / "t.store", samples, block_records=64)
        with TraceReader(path) as reader:
            assert reader.total_records == 1000
            assert len(reader) == 1000
            np.testing.assert_array_equal(
                reader.read_segment("primary"), samples
            )

    def test_iter_blocks_concatenates_to_segment(self, tmp_path, rng):
        samples = rng.exponential(5.0, 1000)
        path = write_store(tmp_path / "t.store", samples, block_records=64)
        reader = TraceReader(path)
        joined = np.concatenate(list(reader.iter_blocks("primary")))
        np.testing.assert_array_equal(joined, samples)

    def test_multi_segment_widths(self, tmp_path, rng):
        path = tmp_path / "t.store"
        primary = rng.exponential(5.0, 100)
        pairs = rng.exponential(5.0, (40, 2))
        with TraceWriter(path, block_records=16) as writer:
            writer.append(primary)
            writer.begin_segment("pairs", 2)
            writer.append(pairs)
        reader = TraceReader(path)
        np.testing.assert_array_equal(reader.read_segment("primary"), primary)
        np.testing.assert_array_equal(reader.read_segment("pairs"), pairs)
        assert reader.segment("pairs").width == 2

    def test_default_block_records_is_two_mib(self):
        assert DEFAULT_BLOCK_RECORDS * 8 == 2 * 2**20

    def test_memmap_matches_read_segment(self, tmp_path, rng):
        samples = rng.exponential(5.0, 500)
        path = write_store(tmp_path / "t.store", samples, block_records=64)
        reader = TraceReader(path)
        np.testing.assert_array_equal(reader.memmap("primary"), samples)


class TestMetadataOnlyOpen:
    def test_open_loads_no_blocks(self, tmp_path, rng):
        """The acceptance-criteria property: opening a store reads header
        and sidecar only — the block-load counter stays at zero until a
        block is actually requested."""
        path = write_store(
            tmp_path / "t.store", rng.exponential(5.0, 4096), block_records=256
        )
        before = _counter_value("store.blocks_loaded")
        reader = TraceReader(path)
        assert reader.blocks_loaded == 0
        assert reader.bytes_read == 0
        # Metadata queries don't touch data blocks either.
        reader.info()
        assert reader.segment("primary").records == 4096
        assert reader.blocks_loaded == 0
        assert _counter_value("store.blocks_loaded") == before
        reader.read_block(0)
        assert reader.blocks_loaded == 1
        assert _counter_value("store.blocks_loaded") == before + 1

    def test_lru_cache_counts_hits(self, tmp_path, rng):
        path = write_store(
            tmp_path / "t.store", rng.exponential(5.0, 1024), block_records=128
        )
        reader = TraceReader(path, cache_blocks=2)
        reader.read_block(0)
        reader.read_block(0)
        assert reader.blocks_loaded == 1 and reader.cache_hits == 1
        # Evict block 0 (capacity 2), then re-read it: a fresh load.
        reader.read_block(1)
        reader.read_block(2)
        reader.read_block(0)
        assert reader.blocks_loaded == 4 and reader.cache_hits == 1


def _counter_value(name):
    metric = get_metrics().get(name)
    return metric.value if metric is not None else 0


class TestZeroRecordStore:
    def test_empty_store_reads_back_empty(self, tmp_path):
        path = tmp_path / "empty.store"
        with TraceWriter(path):
            pass
        reader = TraceReader(path)
        assert reader.total_records == 0
        assert reader.read_segment("primary").size == 0

    def test_empty_store_verifies(self, tmp_path):
        path = tmp_path / "empty.store"
        with TraceWriter(path):
            pass
        assert TraceReader(path).verify() == 0


class TestTruncation:
    def test_truncated_final_block(self, tmp_path, rng):
        path = write_store(
            tmp_path / "t.store", rng.exponential(5.0, 100), block_records=16
        )
        full = path.read_bytes()
        path.write_bytes(full[:-40])
        # Geometry validation catches the short file at open time.
        with pytest.raises(StoreTruncatedError, match="truncated"):
            TraceReader(path)

    def test_file_shorter_than_header(self, tmp_path):
        path = tmp_path / "stub.store"
        path.write_bytes(b"RPROTRC\x00tooshort")
        with pytest.raises(StoreTruncatedError, match="64-byte header"):
            TraceReader(path)

    def test_block_read_past_eof(self, tmp_path, rng):
        # Open a healthy reader first, then truncate the file behind it:
        # the short read is caught at block-read time.
        path = write_store(
            tmp_path / "t.store", rng.exponential(5.0, 100), block_records=16
        )
        reader = TraceReader(path)
        last = len(reader.segment("primary").blocks) - 1
        path.write_bytes(path.read_bytes()[:-40])
        with pytest.raises(StoreTruncatedError, match="truncated"):
            reader.read_block(last)


class TestChecksum:
    def test_corrupt_block_fails_crc(self, tmp_path, rng):
        path = write_store(
            tmp_path / "t.store", rng.exponential(5.0, 100), block_records=16
        )
        # Flip a byte in the middle of the data region, past the header.
        patch_bytes(path, HEADER_BYTES + 100, b"\xff")
        with pytest.raises(StoreChecksumError, match="checksum"):
            TraceReader(path).read_segment("primary")

    def test_verify_walks_every_block(self, tmp_path, rng):
        path = write_store(
            tmp_path / "t.store", rng.exponential(5.0, 100), block_records=16
        )
        n_blocks = TraceReader(path).verify()
        assert n_blocks == len(TraceReader(path).segment("primary").blocks)
        patch_bytes(path, HEADER_BYTES + 100, b"\xff")
        with pytest.raises(StoreChecksumError):
            TraceReader(path).verify()


class TestVersionSkew:
    def test_future_header_version_is_named_error(self, tmp_path, rng):
        path = write_store(tmp_path / "t.store", rng.exponential(5.0, 10))
        patch_bytes(
            path, _VERSION_OFF, struct.pack("<I", FORMAT_VERSION + 1)
        )
        with pytest.raises(StoreVersionError, match="not supported"):
            TraceReader(path)

    def test_sidecar_version_skew(self, tmp_path, rng):
        path = write_store(tmp_path / "t.store", rng.exponential(5.0, 10))
        side = sidecar_path(path)
        doc = json.loads(open(side).read())
        doc["version"] = FORMAT_VERSION + 1
        open(side, "w").write(json.dumps(doc))
        with pytest.raises(StoreVersionError, match="sidecar version"):
            TraceReader(path)


class TestEndianness:
    def test_big_endian_store_is_named_error(self, tmp_path, rng):
        path = write_store(tmp_path / "t.store", rng.exponential(5.0, 10))
        # A big-endian writer would emit the byte-order mark byte-swapped.
        patch_bytes(path, _BOM_OFF, struct.pack(">I", 0x01020304))
        with pytest.raises(StoreEndiannessError, match="big-endian"):
            TraceReader(path)

    def test_garbage_byte_order_mark(self, tmp_path, rng):
        path = write_store(tmp_path / "t.store", rng.exponential(5.0, 10))
        patch_bytes(path, _BOM_OFF, struct.pack("<I", 0xDEADBEEF))
        with pytest.raises(StoreFormatError, match="byte-order mark"):
            TraceReader(path)


class TestFormatErrors:
    def test_bad_magic(self, tmp_path, rng):
        path = write_store(tmp_path / "t.store", rng.exponential(5.0, 10))
        patch_bytes(path, 0, b"NOTASTOR")
        with pytest.raises(StoreFormatError, match="bad magic"):
            TraceReader(path)

    def test_missing_sidecar(self, tmp_path, rng):
        path = write_store(tmp_path / "t.store", rng.exponential(5.0, 10))
        os.unlink(sidecar_path(path))
        with pytest.raises(StoreFormatError, match="missing sidecar"):
            TraceReader(path)

    def test_corrupt_sidecar_json(self, tmp_path, rng):
        path = write_store(tmp_path / "t.store", rng.exponential(5.0, 10))
        open(sidecar_path(path), "w").write("{not json")
        with pytest.raises(StoreFormatError, match="corrupt sidecar"):
            TraceReader(path)

    def test_all_errors_are_value_errors(self):
        # main.py maps ValueError to exit code 2; every store failure
        # must ride that path.
        for exc in (
            StoreError,
            StoreFormatError,
            StoreVersionError,
            StoreEndiannessError,
            StoreTruncatedError,
            StoreChecksumError,
        ):
            assert issubclass(exc, ValueError)


class TestAppendMode:
    def test_append_extends_and_clears_sorted(self, tmp_path, rng):
        a = np.sort(rng.exponential(5.0, 40))
        b = rng.exponential(5.0, 25)
        path = tmp_path / "t.store"
        with TraceWriter(path, block_records=16, sorted=True) as writer:
            writer.append(a)
        assert TraceReader(path).sorted
        with TraceWriter(path, mode="a") as writer:
            writer.append(b)
        reader = TraceReader(path)
        assert not reader.sorted  # appending unsorted data drops the flag
        np.testing.assert_array_equal(
            reader.read_segment("primary"), np.concatenate([a, b])
        )

    def test_append_rebuffers_partial_final_block(self, tmp_path, rng):
        # 40 records at block size 16 leaves an 8-record tail block; the
        # append must splice into it, not stack a second partial block.
        a = rng.exponential(5.0, 40)
        path = tmp_path / "t.store"
        with TraceWriter(path, block_records=16) as writer:
            writer.append(a)
        with TraceWriter(path, mode="a") as writer:
            writer.append(np.array([1.0, 2.0]))
        reader = TraceReader(path)
        blocks = reader.segment("primary").blocks
        assert [b.records for b in blocks] == [16, 16, 10]
        assert reader.verify() == 3


class TestObsCounters:
    def test_write_and_read_counters_advance(self, tmp_path, rng):
        wrote = _counter_value("store.blocks_written")
        read = _counter_value("store.bytes_read")
        path = write_store(
            tmp_path / "t.store", rng.exponential(5.0, 64), block_records=16
        )
        assert _counter_value("store.blocks_written") == wrote + 4
        TraceReader(path).read_segment("primary")
        assert _counter_value("store.bytes_read") > read
