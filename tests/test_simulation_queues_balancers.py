"""Tests for queue disciplines (§5.4 Fig 5c) and load balancers (Fig 5b)."""

import numpy as np
import pytest

from repro.simulation.load_balancer import make_balancer
from repro.simulation.queues import (
    FifoQueue,
    PrioritizedFifoQueue,
    PrioritizedLifoQueue,
    make_discipline,
)
from repro.simulation.server import Request, Server


def req(i, reissue=False):
    return Request(query_id=i, is_reissue=reissue, service_time=1.0, dispatch_time=0.0)


class TestFifo:
    def test_fifo_order(self):
        q = FifoQueue()
        for i in range(3):
            q.push(req(i))
        assert [q.pop().query_id for _ in range(3)] == [0, 1, 2]

    def test_pop_empty_returns_none(self):
        assert FifoQueue().pop() is None

    def test_len_and_bool(self):
        q = FifoQueue()
        assert not q
        q.push(req(0))
        assert len(q) == 1 and q


class TestPrioritized:
    def test_primaries_before_reissues(self):
        q = PrioritizedFifoQueue()
        q.push(req(0, reissue=True))
        q.push(req(1))
        q.push(req(2, reissue=True))
        q.push(req(3))
        order = [(q.pop().query_id, q.pop().query_id) for _ in range(1)][0]
        assert order == (1, 3)
        assert q.pop().query_id == 0  # then reissues FIFO
        assert q.pop().query_id == 2

    def test_lifo_reissue_order(self):
        q = PrioritizedLifoQueue()
        q.push(req(0, reissue=True))
        q.push(req(1, reissue=True))
        assert q.pop().query_id == 1  # freshest reissue first
        assert q.pop().query_id == 0

    def test_len_counts_both_queues(self):
        q = PrioritizedFifoQueue()
        q.push(req(0, reissue=True))
        q.push(req(1))
        assert len(q) == 2

    def test_factory_names(self):
        assert isinstance(make_discipline("fifo"), FifoQueue)
        assert isinstance(
            make_discipline("prioritized-fifo"), PrioritizedFifoQueue
        )
        assert isinstance(
            make_discipline("prioritized-lifo"), PrioritizedLifoQueue
        )

    def test_factory_rejects_unknown(self):
        with pytest.raises(KeyError, match="fifo"):
            make_discipline("lifo-what")

    def test_factory_accepts_callable(self):
        q = make_discipline(FifoQueue)
        assert isinstance(q, FifoQueue)


class TestServer:
    def test_enqueue_starts_when_idle(self):
        s = Server(0, FifoQueue())
        started = s.enqueue(req(0))
        assert started is not None and s.busy

    def test_enqueue_queues_when_busy(self):
        s = Server(0, FifoQueue())
        s.enqueue(req(0))
        assert s.enqueue(req(1)) is None
        assert s.backlog() == 2

    def test_finish_returns_done_and_next(self):
        s = Server(0, FifoQueue())
        s.enqueue(req(0))
        s.enqueue(req(1))
        done, nxt = s.finish()
        assert done.query_id == 0 and nxt.query_id == 1

    def test_finish_idle_raises(self):
        with pytest.raises(RuntimeError):
            Server(0, FifoQueue()).finish()

    def test_busy_time_accumulates(self):
        s = Server(0, FifoQueue())
        s.enqueue(req(0))
        s.finish()
        assert s.busy_time == pytest.approx(1.0)


class TestBalancers:
    def test_random_uniform_coverage(self):
        b = make_balancer("random")
        rng = np.random.default_rng(0)
        counts = np.zeros(4)
        backlogs = np.zeros(4, dtype=np.int64)
        for _ in range(4000):
            counts[b.choose(backlogs, rng)] += 1
        assert counts.min() > 800  # roughly uniform

    def test_min_of_all_picks_shortest(self):
        b = make_balancer("min-of-all")
        rng = np.random.default_rng(0)
        backlogs = np.array([3, 0, 2, 5])
        assert b.choose(backlogs, rng) == 1

    def test_min_of_two_never_picks_strictly_worse(self):
        b = make_balancer("min-of-2")
        rng = np.random.default_rng(0)
        backlogs = np.array([0, 10])
        # over many draws, the 10-deep server is only chosen when both
        # probes hit it; with two distinct probes it never wins.
        picks = {b.choose(backlogs, rng) for _ in range(200)}
        assert picks == {0}

    def test_round_robin_cycles(self):
        b = make_balancer("round-robin")
        rng = np.random.default_rng(0)
        backlogs = np.zeros(3, dtype=np.int64)
        seq = [b.choose(backlogs, rng) for _ in range(6)]
        assert seq == [0, 1, 2, 0, 1, 2]

    def test_unknown_balancer_rejected(self):
        with pytest.raises(KeyError):
            make_balancer("magic")

    def test_reset_restores_state(self):
        b = make_balancer("round-robin")
        rng = np.random.default_rng(0)
        backlogs = np.zeros(3, dtype=np.int64)
        b.choose(backlogs, rng)
        b.reset()
        assert b.choose(backlogs, rng) == 0
