"""Empirical-CDF structures: random access and monotone cursors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures import EmpiricalCdf, MonotoneCdfCursor


class TestEmpiricalCdf:
    def test_strict_counting(self):
        c = EmpiricalCdf([1.0, 2.0, 2.0, 3.0])
        assert c.count_below(2.0) == 1
        assert c.count_below(2.5) == 3
        assert float(c(2.5)) == pytest.approx(0.75)

    def test_vectorized_call(self):
        c = EmpiricalCdf([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(
            c(np.array([0.5, 2.5, 9.0])), [0.0, 0.5, 1.0]
        )

    def test_survival_complements(self, rng):
        s = rng.exponential(1.0, 100)
        c = EmpiricalCdf(s)
        ts = np.linspace(0, 5, 20)
        np.testing.assert_allclose(c.survival(ts), 1.0 - c(ts))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCdf([])


class TestMonotoneCursor:
    def test_up_direction_matches_searchsorted(self, rng):
        s = np.sort(rng.exponential(1.0, 500))
        cur = MonotoneCdfCursor(s, "up")
        for t in np.sort(rng.uniform(0, 8, 200)):
            assert cur.count_below(t) == int(
                np.searchsorted(s, t, side="left")
            )

    def test_down_direction_matches_searchsorted(self, rng):
        s = np.sort(rng.exponential(1.0, 500))
        cur = MonotoneCdfCursor(s, "down")
        for t in np.sort(rng.uniform(0, 8, 200))[::-1]:
            assert cur.count_below(t) == int(
                np.searchsorted(s, t, side="left")
            )

    def test_non_monotone_raises(self):
        cur = MonotoneCdfCursor(np.array([1.0, 2.0]), "up")
        cur.count_below(1.5)
        with pytest.raises(ValueError):
            cur.count_below(1.0)
        cur = MonotoneCdfCursor(np.array([1.0, 2.0]), "down")
        cur.count_below(1.5)
        with pytest.raises(ValueError):
            cur.count_below(1.8)

    def test_repeated_queries_allowed(self):
        cur = MonotoneCdfCursor(np.array([1.0, 2.0, 3.0]), "up")
        assert cur.count_below(2.5) == 2
        assert cur.count_below(2.5) == 2

    def test_cdf_and_survival(self):
        cur = MonotoneCdfCursor(np.array([1.0, 2.0, 3.0, 4.0]), "up")
        assert cur.cdf(2.5) == pytest.approx(0.5)
        assert cur.survival(3.5) == pytest.approx(0.25)

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            MonotoneCdfCursor(np.array([1.0]), "sideways")

    @given(
        st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=80),
        st.lists(st.floats(-5, 105, allow_nan=False), min_size=1, max_size=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_matches_reference(self, samples, queries):
        s = np.sort(np.asarray(samples))
        cur = MonotoneCdfCursor(s, "up")
        for t in sorted(queries):
            assert cur.count_below(t) == int(np.sum(s < t))
