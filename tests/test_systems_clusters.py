"""Integration tests for the Redis / Lucene cluster systems (§6)."""

import numpy as np
import pytest

from repro.core.policies import NoReissue, SingleD, SingleR
from repro.systems import (
    LuceneClusterSystem,
    RedisClusterSystem,
    RoundRobinConnectionQueue,
)
from repro.simulation.server import Request


def req(qid, reissue=False):
    return Request(query_id=qid, is_reissue=reissue, service_time=1.0, dispatch_time=0.0)


class TestRoundRobinConnectionQueue:
    def test_cycles_over_connections(self):
        q = RoundRobinConnectionQueue(n_connections=2)
        # conn0: qids 0,2; conn1: qids 1,3
        for i in range(4):
            q.push(req(i))
        order = [q.pop().query_id for _ in range(4)]
        assert order == [0, 1, 2, 3]

    def test_one_spammy_connection_does_not_starve(self):
        q = RoundRobinConnectionQueue(n_connections=2)
        for _ in range(3):
            q.push(req(0))  # all on conn 0
        q.push(req(1))  # conn 1
        order = []
        while q:
            order.append(q.pop().query_id)
        assert order.index(1) == 1  # served in the first full cycle

    def test_reissues_hash_to_other_connections(self):
        q = RoundRobinConnectionQueue(n_connections=16)
        conns = {q._connection_of(req(i)) for i in range(16)}
        reconns = {q._connection_of(req(i, reissue=True)) for i in range(16)}
        assert conns == set(range(16))
        assert reconns  # defined and valid
        assert all(0 <= c < 16 for c in reconns)

    def test_pop_empty(self):
        assert RoundRobinConnectionQueue().pop() is None

    def test_len_tracks(self):
        q = RoundRobinConnectionQueue(4)
        q.push(req(0))
        q.push(req(1))
        assert len(q) == 2
        q.pop()
        assert len(q) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RoundRobinConnectionQueue(0)


@pytest.fixture(scope="module")
def redis_sys():
    return RedisClusterSystem(utilization=0.4, n_queries=6000)


@pytest.fixture(scope="module")
def lucene_sys():
    return LuceneClusterSystem(utilization=0.4, n_queries=6000)


class TestRedisCluster:
    def test_utilization_targeted(self, redis_sys):
        run = redis_sys.run(NoReissue(), np.random.default_rng(1))
        assert run.utilization == pytest.approx(0.4, abs=0.12)
        assert run.meta["system"] == "redis-set-intersection"

    def test_fixed_trace_stabilizes_p99(self, redis_sys):
        p99s = [
            redis_sys.run(NoReissue(), np.random.default_rng(s)).tail(0.99)
            for s in (1, 2)
        ]
        assert max(p99s) / min(p99s) < 2.0  # trace pinned, only arrival noise

    def test_reissue_rate_tracks_budget(self, redis_sys):
        base = redis_sys.run(NoReissue(), np.random.default_rng(3))
        rx = base.primary_response_times
        d = float(np.quantile(rx, 0.96))
        q = 0.5
        run = redis_sys.run(SingleR(d, q), np.random.default_rng(3))
        assert 0.0 < run.reissue_rate < 0.15

    def test_service_time_sample_profile(self, redis_sys):
        s = redis_sys.service_time_sample(6000, rng=1)
        assert s.min() >= redis_sys.store.overhead_ms
        assert (s < 10).mean() > 0.9

    def test_execute_sample_requires_materialized(self):
        sys_ = RedisClusterSystem(
            utilization=0.3, n_queries=100, materialize=True,
        )
        out = sys_.execute_sample(3, rng=0)
        assert len(out) == 3
        assert all(isinstance(a, np.ndarray) for a in out)

    def test_validation(self):
        with pytest.raises(ValueError):
            RedisClusterSystem(utilization=0.0)


class TestLuceneCluster:
    def test_utilization_targeted(self, lucene_sys):
        run = lucene_sys.run(NoReissue(), np.random.default_rng(1))
        assert run.utilization == pytest.approx(0.4, abs=0.1)
        assert run.meta["system"] == "lucene-search"

    def test_reissue_uses_fresh_noise(self, lucene_sys):
        # Reissue response times must not be identical to primaries: the
        # per-execution noise decorrelates replica re-executions.
        run = lucene_sys.run(SingleR(30.0, 0.5), np.random.default_rng(2))
        assert run.reissue_pair_x.size > 10
        assert not np.allclose(
            run.reissue_pair_x[:10], run.reissue_pair_y[:10]
        )

    def test_single_fifo_discipline(self, lucene_sys):
        assert lucene_sys._config.discipline == "fifo"

    def test_validation(self):
        with pytest.raises(ValueError):
            LuceneClusterSystem(utilization=1.0)


class TestPaperShapeChecks:
    """Coarse, seed-pinned shape assertions from §6 (small n for speed)."""

    def test_redis_singler_beats_baseline_at_40(self):
        sys_ = RedisClusterSystem(utilization=0.4, n_queries=20_000)
        seeds = (7, 9, 11)
        base = np.median(
            [sys_.run(NoReissue(), np.random.default_rng(s)).tail(0.99) for s in seeds]
        )
        rx = sys_.run(NoReissue(), np.random.default_rng(7)).primary_response_times
        d = float(np.quantile(rx, 0.97))
        q = min(1.0, 0.035 / max(float((rx > d).mean()), 1e-9))
        tail = np.median(
            [sys_.run(SingleR(d, q), np.random.default_rng(s)).tail(0.99) for s in seeds]
        )
        assert tail < base * 0.9  # paper: 30-70% lower at 2-3.5%

    def test_redis_singler_beats_singled_at_small_budget(self):
        # SingleD is one point of the SingleR family (q=1 at the Eq.-2
        # delay); the *best* SingleR over a delay grid must therefore do at
        # least as well, within seed noise.
        sys_ = RedisClusterSystem(utilization=0.4, n_queries=20_000)
        seeds = (7, 9)
        rx = sys_.run(NoReissue(), np.random.default_rng(7)).primary_response_times
        B = 0.015
        d_sd = float(np.quantile(rx, 1 - B))
        sd = np.median(
            [sys_.run(SingleD(d_sd), np.random.default_rng(s)).tail(0.99) for s in seeds]
        )
        best_sr = np.inf
        for pct in (0.95, 0.965, 0.98, 1 - B):
            d = float(np.quantile(rx, pct))
            q = min(1.0, B / max(float((rx > d).mean()), 1e-9))
            sr = np.median(
                [
                    sys_.run(SingleR(d, q), np.random.default_rng(s)).tail(0.99)
                    for s in seeds
                ]
            )
            best_sr = min(best_sr, sr)
        assert best_sr <= sd * 1.1
