"""Fenwick tree unit and property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures import FenwickTree


class TestFenwickBasics:
    def test_empty_tree(self):
        t = FenwickTree(0)
        assert len(t) == 0
        assert t.prefix_sum(0) == 0
        assert t.total() == 0

    def test_single_slot(self):
        t = FenwickTree(1)
        t.add(0, 5)
        assert t.prefix_sum(1) == 5
        assert t.prefix_sum(0) == 0

    def test_prefix_sums(self):
        t = FenwickTree(10)
        for i in range(10):
            t.add(i, i)
        for c in range(11):
            assert t.prefix_sum(c) == sum(range(c))

    def test_range_sum(self):
        t = FenwickTree(8)
        for i in range(8):
            t.add(i, 1)
        assert t.range_sum(2, 5) == 3
        assert t.range_sum(5, 2) == 0

    def test_prefix_clamps(self):
        t = FenwickTree(4)
        t.add(3, 7)
        assert t.prefix_sum(100) == 7
        assert t.prefix_sum(-5) == 0

    def test_index_bounds(self):
        t = FenwickTree(4)
        with pytest.raises(IndexError):
            t.add(4)
        with pytest.raises(IndexError):
            t.add(-1)

    def test_negative_size(self):
        with pytest.raises(ValueError):
            FenwickTree(-1)

    def test_find_kth(self):
        t = FenwickTree(10)
        for i in (2, 5, 5, 9):
            t.add(i)
        assert t.find_kth(1) == 2
        assert t.find_kth(2) == 5
        assert t.find_kth(3) == 5
        assert t.find_kth(4) == 9
        with pytest.raises(ValueError):
            t.find_kth(5)
        with pytest.raises(ValueError):
            t.find_kth(0)


class TestFenwickProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 63), st.integers(1, 5)),
            min_size=0,
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_bruteforce(self, updates):
        t = FenwickTree(64)
        ref = np.zeros(64, dtype=np.int64)
        for idx, delta in updates:
            t.add(idx, delta)
            ref[idx] += delta
        for c in range(0, 65, 7):
            assert t.prefix_sum(c) == int(ref[:c].sum())
        assert t.total() == int(ref.sum())

    @given(st.lists(st.integers(0, 31), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_find_kth_matches_sorted(self, indices):
        t = FenwickTree(32)
        for i in indices:
            t.add(i)
        expected = sorted(indices)
        for k in range(1, len(indices) + 1):
            assert t.find_kth(k) == expected[k - 1]
