"""Tests for the ASCII chart and table renderers."""

import numpy as np
import pytest

from repro.viz.ascii_chart import histogram_chart, line_chart, scatter_chart
from repro.viz.table import format_csv, format_table


class TestLineChart:
    def test_renders_frame_and_legend(self):
        out = line_chart(
            {"a": ([0, 1], [0, 1]), "b": ([0, 1], [1, 0])},
            title="T", width=20, height=6,
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[2].startswith("+") and lines[2].endswith("+")
        assert "legend: * a   o b" in out

    def test_extremes_are_plotted_in_corners(self):
        out = line_chart({"s": ([0, 10], [0, 10])}, width=10, height=5)
        rows = [l for l in out.splitlines() if l.startswith("|")]
        assert rows[0].rstrip("|").endswith("*")  # top-right
        assert rows[-1][1] == "*"  # bottom-left

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            line_chart({"s": ([np.nan], [np.nan])})

    def test_nan_points_skipped(self):
        out = line_chart({"s": ([0, np.nan, 2], [1, np.nan, 3])})
        assert "*" in out

    def test_tiny_chart_rejected(self):
        with pytest.raises(ValueError):
            line_chart({"s": ([0], [0])}, width=2, height=2)

    def test_constant_series_renders(self):
        out = line_chart({"s": ([0, 1, 2], [5, 5, 5])})
        assert "5 .. 5" in out

    def test_axis_ranges_in_output(self):
        out = line_chart({"s": ([2, 8], [10, 90])}, x_label="B", y_label="L")
        assert "B: 2 .. 8" in out
        assert "L: 10 .. 90" in out


class TestScatterHistogram:
    def test_scatter_uses_dot_glyph(self):
        out = scatter_chart([0, 1], [0, 1])
        assert "." in out and "*" not in out.replace("legend: . points", "")

    def test_histogram_counts_sum(self):
        vals = np.array([1.0, 1.5, 25.0])
        out = histogram_chart(vals, 10.0, log_counts=False)
        assert "| 2" in out and "| 1" in out

    def test_histogram_clips_long_tails(self):
        vals = np.concatenate([np.ones(100), [1e6]])
        out = histogram_chart(vals, 1.0, max_bins=5)
        assert "+|" in out  # clip marker on last bin

    def test_histogram_rejects_empty(self):
        with pytest.raises(ValueError):
            histogram_chart([], 1.0)

    def test_histogram_rejects_bad_bin(self):
        with pytest.raises(ValueError):
            histogram_chart([1.0], 0.0)

    def test_log_scaling_compresses(self):
        vals = np.concatenate([np.zeros(10_000), np.full(1, 5.0)])
        out_log = histogram_chart(vals, 1.0, log_counts=True, max_bar=40)
        first_bar = out_log.splitlines()[1].count("#")
        last_bar = out_log.splitlines()[-1].count("#")
        assert last_bar > 0  # single count still visible on log axis
        assert first_bar == 40


class TestTables:
    def test_alignment(self):
        out = format_table(["name", "v"], [["a", 1.5], ["bb", 22.25]])
        lines = out.splitlines()
        assert lines[0].endswith("v")
        assert len(set(len(l) for l in lines)) == 1  # rectangular

    def test_title(self):
        out = format_table(["h"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_csv(self):
        out = format_csv(["a", "b"], [[1, 2.5], ["x", 0.001]])
        assert out.splitlines()[0] == "a,b"
        assert out.splitlines()[1] == "1,2.5"

    def test_csv_width_mismatch(self):
        with pytest.raises(ValueError):
            format_csv(["a"], [[1, 2]])

    def test_float_formatting(self):
        out = format_csv(["v"], [[123456.0], [0.00001]])
        assert "1.23e+05" in out
        assert "1e-05" in out
