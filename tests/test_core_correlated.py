"""Tests for the correlation-aware optimizer (paper §4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.correlated import (
    ConditionalReissueCdf,
    compute_optimal_singler_correlated,
)
from repro.core.optimizer import compute_optimal_singler


def correlated_pairs(n=3000, r=0.5, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.pareto(1.1, n) * 2.0 + 2.0
    z = rng.pareto(1.1, n) * 2.0 + 2.0
    return x, r * x + z


class TestConditionalCdf:
    def test_matches_naive_count(self):
        x, y = correlated_pairs(500)
        cond = ConditionalReissueCdf(x, y)
        for t, yy in [(5.0, 3.0), (10.0, 8.0), (2.0, 50.0)]:
            above = x > t
            if above.sum() == 0:
                expected = 0.0
            else:
                expected = float((y[above] <= yy).sum() / above.sum())
            assert cond(t, yy) == pytest.approx(expected)

    def test_no_mass_above_t(self):
        x = np.array([1.0, 2.0])
        y = np.array([1.0, 2.0])
        cond = ConditionalReissueCdf(x, y)
        assert cond(5.0, 100.0) == 0.0

    def test_positive_correlation_lowers_conditional(self):
        # Under positive correlation, conditioning on a slow primary makes
        # a fast reissue less likely than unconditionally.
        x, y = correlated_pairs(20_000, r=1.0, seed=2)
        cond = ConditionalReissueCdf(x, y)
        t = float(np.quantile(x, 0.95))
        yy = float(np.quantile(y, 0.5))
        unconditional = float((y <= yy).mean())
        assert cond(t, yy) < unconditional


class TestCorrelatedFit:
    def test_feasible_and_on_budget(self):
        x, y = correlated_pairs()
        fit = compute_optimal_singler_correlated(x, x, y, 0.95, 0.1)
        assert 0.0 <= fit.prob <= 1.0
        surv = float((x >= fit.delay).mean())
        assert fit.prob * surv <= 0.1 + 1 / x.size + 1e-9
        assert fit.predicted_tail <= fit.baseline_tail + 1e-9

    def test_independent_pairs_agree_with_independent_optimizer(self):
        # With r=0 the conditional CDF estimator should land near the
        # unconditional fit.
        rng = np.random.default_rng(5)
        x = rng.lognormal(1.0, 1.0, 8000)
        y = rng.lognormal(1.0, 1.0, 8000)
        fit_c = compute_optimal_singler_correlated(x, x, y, 0.95, 0.15)
        fit_i = compute_optimal_singler(x, y, 0.95, 0.15)
        assert fit_c.predicted_tail == pytest.approx(
            fit_i.predicted_tail, rel=0.15
        )

    def test_correlation_makes_optimizer_reissue_earlier(self):
        # §5.3: under service-time correlation the optimal SingleR reissues
        # earlier (larger outstanding fraction) with smaller q.
        x_i, y_i = correlated_pairs(20_000, r=0.0, seed=3)
        x_c, y_c = correlated_pairs(20_000, r=0.9, seed=3)
        fit_i = compute_optimal_singler_correlated(x_i, x_i, y_i, 0.95, 0.1)
        fit_c = compute_optimal_singler_correlated(x_c, x_c, y_c, 0.95, 0.1)
        out_i = float((x_i > fit_i.delay).mean())
        out_c = float((x_c > fit_c.delay).mean())
        assert out_c >= out_i
        assert fit_c.prob <= fit_i.prob + 1e-9

    def test_correlated_fit_predicts_no_better_than_independent_assumption(self):
        # Ignoring positive correlation overestimates reissue value: the
        # correlation-aware predicted tail must be >= the naive one.
        x, y = correlated_pairs(10_000, r=0.8, seed=4)
        naive = compute_optimal_singler(x, y, 0.95, 0.1)
        aware = compute_optimal_singler_correlated(x, x, y, 0.95, 0.1)
        assert aware.predicted_tail >= naive.predicted_tail - 1e-9

    def test_validation(self):
        x, y = correlated_pairs(100)
        with pytest.raises(ValueError):
            compute_optimal_singler_correlated([], x, y, 0.9, 0.1)
        with pytest.raises(ValueError):
            compute_optimal_singler_correlated(x, x[:10], y[:5], 0.9, 0.1)
        with pytest.raises(ValueError):
            compute_optimal_singler_correlated(x, x, y, 1.5, 0.1)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 1000),
    r=st.floats(0.0, 1.0),
    budget=st.floats(0.05, 0.5),
)
def test_property_correlated_fit_invariants(seed, r, budget):
    rng = np.random.default_rng(seed)
    x = rng.lognormal(0.5, 1.0, 500)
    y = r * x + rng.lognormal(0.5, 1.0, 500)
    fit = compute_optimal_singler_correlated(x, x, y, 0.9, budget)
    assert 0.0 <= fit.prob <= 1.0
    assert fit.predicted_tail <= fit.baseline_tail + 1e-9
    assert 0.0 <= fit.predicted_success <= 1.0
