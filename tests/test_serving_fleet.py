"""Tests for the sharded serving fleet: routing, admission, policy
propagation, and behavior under injected faults (the chaos layer)."""

import asyncio

import numpy as np
import pytest

from repro.core.policies import NoReissue, ReissuePolicy, SingleR
from repro.distributions import Deterministic, LogNormal
from repro.serving.backends import SyntheticBackend
from repro.serving.chaos import ChaosBackend
from repro.serving.fleet import (
    SHARD_SELECTORS,
    PolicyStore,
    ServingFleet,
    ShardWorker,
    make_selector,
)
from repro.serving.hedge import HedgedClient
from repro.serving.loadgen import LoadGenerator


def synthetic_factory(dist, time_scale):
    def factory(shard_id, rng):
        return SyntheticBackend(dist, time_scale=time_scale, rng=rng)

    return factory


def build_fleet(
    n_shards=2,
    dist=None,
    time_scale=0.0,
    policy=None,
    seed=7,
    **kwargs,
):
    return ServingFleet.build(
        n_shards,
        synthetic_factory(dist or LogNormal(3.0, 0.6), time_scale),
        policy=policy if policy is not None else SingleR(40.0, 0.2),
        seed=seed,
        **kwargs,
    )


class TestPolicyStore:
    def test_publish_bumps_version_and_snapshots(self):
        store = PolicyStore()
        assert store.get() == (0, None)
        v1 = store.publish(SingleR(10.0, 0.1), source="test")
        v2 = store.publish(SingleR(20.0, 0.2))
        assert (v1, v2) == (1, 2)
        version, policy = store.get()
        assert version == 2
        assert policy == SingleR(20.0, 0.2)
        assert store.publishes == [(1, "test"), (2, "")]

    def test_seed_policy_is_published_as_init(self):
        store = PolicyStore(SingleR(5.0, 0.5))
        assert store.version == 1
        assert store.publishes == [(1, "init")]

    def test_non_policy_rejected(self):
        with pytest.raises(TypeError):
            PolicyStore().publish("single-r")


class TestShardSelectors:
    def test_round_robin_cycles(self):
        selector = make_selector("round-robin")
        shards = [object(), object(), object()]
        picks = [selector.select(shards, i) for i in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]

    def test_hash_is_stable_and_key_affine(self):
        selector = make_selector("hash")
        shards = [object(), object(), object()]
        # Same query id -> same shard, every time (crc32, not salted hash).
        assert selector.select(shards, 42) == selector.select(shards, 42)
        # An explicit routing key overrides the query id.
        by_key = selector.select(shards, 1, key="user:7")
        assert by_key == selector.select(shards, 999, key="user:7")
        # Spread: 200 distinct ids should not all land on one shard.
        picks = {selector.select(shards, i) for i in range(200)}
        assert picks == {0, 1, 2}

    def test_least_loaded_picks_min_active(self):
        selector = make_selector("least-loaded")

        class FakeShard:
            def __init__(self, load):
                self.load = load

        shards = [FakeShard(3), FakeShard(1), FakeShard(2)]
        assert selector.select(shards, 0) == 1
        shards[1].load = 9
        assert selector.select(shards, 1) == 2

    def test_unknown_selector_names_kind_and_lists_valid(self):
        with pytest.raises(KeyError) as exc:
            make_selector("rendezvous")
        message = str(exc.value)
        assert "shard-selection strategy" in message
        assert "'rendezvous'" in message
        for name in SHARD_SELECTORS.names():
            assert name in message


class TestShardWorker:
    def test_admission_limit_validated(self):
        client = HedgedClient(SyntheticBackend(Deterministic(1.0), 0.0))
        with pytest.raises(ValueError):
            ShardWorker(0, client, PolicyStore(), admission_limit=0)

    def test_untuned_shard_adopts_store_policy(self):
        client = HedgedClient(
            SyntheticBackend(Deterministic(1.0), 0.0), NoReissue()
        )
        store = PolicyStore(SingleR(10.0, 0.1))
        worker = ShardWorker(0, client, store)
        worker.sync_policy()
        assert client.policy == SingleR(10.0, 0.1)
        store.publish(SingleR(30.0, 0.3))
        worker.sync_policy()
        assert client.policy == SingleR(30.0, 0.3)


class TestFleetBasics:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(ValueError):
            ServingFleet([])
        with pytest.raises(ValueError):
            build_fleet(n_shards=0)

    def test_tuned_shard_out_of_range(self):
        with pytest.raises(ValueError):
            ServingFleet.build(
                2,
                synthetic_factory(Deterministic(1.0), 0.0),
                tuner=object(),
                tuned_shard=5,
            )

    def test_round_robin_spreads_requests_evenly(self):
        fleet = build_fleet(n_shards=3)
        asyncio.run(self._drive(fleet, 90))
        completed = [s.client.metrics.completed for s in fleet.shards]
        assert completed == [30, 30, 30]
        assert fleet.completed_total == 90

    def test_seed_policy_pins_every_shard(self):
        fleet = build_fleet(policy=SingleR(25.0, 0.4))
        asyncio.run(self._drive(fleet, 10))
        for shard in fleet.shards:
            assert shard.client.policy == SingleR(25.0, 0.4)

    def test_error_containment_counts_instead_of_raising(self):
        class FailingBackend:
            time_scale = 0.0

            async def request(self, query_id, *, is_reissue=False):
                raise RuntimeError("backend down")

        clients = [
            HedgedClient(FailingBackend(), NoReissue()),
            HedgedClient(
                SyntheticBackend(Deterministic(1.0), 0.0), NoReissue()
            ),
        ]
        fleet = ServingFleet(clients)
        results = asyncio.run(self._drive(fleet, 10))
        # Round-robin: every other request hits the failing shard and is
        # contained (None), the rest serve normally — no exception.
        assert results.count(None) == 5
        assert fleet.errors == 5
        assert fleet.shards[0].errors == 5
        assert fleet.shards[1].client.metrics.completed == 5

    def test_stats_shape(self):
        fleet = build_fleet()
        asyncio.run(self._drive(fleet, 20))
        stats = fleet.stats()
        assert stats["shards"] == 2
        assert stats["selector"] == "round-robin"
        assert stats["completed"] == 20
        assert len(stats["per_shard"]) == 2
        for shard_stats in stats["per_shard"]:
            assert shard_stats["completed"] == 10
            assert shard_stats["p99_ms"] is not None

    @staticmethod
    async def _drive(fleet, n):
        return [await fleet.request(i) for i in range(n)]


class TestAutoTunerPropagation:
    def test_one_shard_refit_reaches_every_shard_via_store(self):
        # Acceptance criterion: an AutoTuner refit on shard 0 must be
        # observed by shards 1 and 2 through the shared PolicyStore.
        from repro.serving.autotune import AutoTuner

        tuner = AutoTuner(
            percentile=0.95,
            budget=0.2,
            batch_size=50,
            refit_interval=100,
            window=1_000,
            use_correlation=False,
        )
        initial = SingleR(0.0, 0.2)
        fleet = ServingFleet.build(
            3,
            synthetic_factory(LogNormal(3.0, 0.6), 0.0),
            policy=initial,
            probe_fraction=0.2,
            tuner=tuner,
            seed=13,
        )

        async def drive():
            for i in range(900):
                await fleet.request(i)

        asyncio.run(drive())
        assert tuner.n_refits >= 1, "the tuned shard never refit"
        fitted = tuner.policy
        assert isinstance(fitted, ReissuePolicy)
        assert fitted != initial
        # The store carries the refit beyond the init publish...
        assert fleet.store.version >= 2
        sources = [source for _, source in fleet.store.publishes]
        assert any(source.startswith("shard0:refit") for source in sources)
        assert fleet.store.policy == fitted
        # ...and both untuned shards adopted it.
        for shard in fleet.shards[1:]:
            assert shard.client.policy == fitted

    def test_tuned_shard_never_subscribes(self):
        # A tuner-carrying client raises on policy assignment; the sync
        # path must publish from it, never write to it.
        from repro.serving.autotune import AutoTuner

        tuner = AutoTuner(percentile=0.95, budget=0.2)
        client = HedgedClient(
            SyntheticBackend(Deterministic(1.0), 0.0), tuner=tuner
        )
        store = PolicyStore(SingleR(99.0, 0.9))
        worker = ShardWorker(0, client, store)
        worker.sync_policy()  # must not raise RuntimeError
        assert client.policy == tuner.policy


class TestAdmissionControl:
    def test_overload_sheds_instead_of_collapsing(self):
        # An unpaced burst far above capacity: the fleet must shed the
        # excess at the door while every admitted request is served at
        # its native latency (no queueing collapse behind a backlog).
        fleet = build_fleet(
            n_shards=2,
            dist=Deterministic(20.0),
            time_scale=2e-4,
            policy=NoReissue(),
            admission_limit=4,
        )
        generator = LoadGenerator(fleet, rng=np.random.default_rng(5))
        result = generator.run(300, mode="open", target_rps=0)
        assert result.shed > 0, "overload never shed"
        assert result.issued == result.completed + result.shed + result.errors
        assert result.errors == 0
        for shard in fleet.shards:
            assert shard.peak_active <= 4
            assert shard.shed + shard.accepted > 0
        # Admitted requests are served at the backend's deterministic
        # 20 ms — a collapsing fleet would show queue-inflated tails.
        merged = fleet.metrics()
        assert merged.quantile(0.99) == pytest.approx(20.0, rel=0.01)
        assert result.quantiles["p99"] == pytest.approx(20.0, rel=0.01)

    def test_no_limit_never_sheds(self):
        fleet = build_fleet(dist=Deterministic(5.0), time_scale=2e-4)
        result = LoadGenerator(fleet).run(100, mode="open", target_rps=0)
        assert result.shed == 0
        assert result.completed == 100


class TestChaosResilience:
    @staticmethod
    def degraded_fleet(policy, seed=23):
        """Two shards; shard 1's backend spikes 10% of attempts 20x."""
        chaos = []

        def factory(shard_id, rng):
            backend = SyntheticBackend(
                LogNormal(2.0, 0.3), time_scale=2e-5, rng=rng
            )
            if shard_id == 1:
                wrapped = ChaosBackend(
                    backend, rng=np.random.default_rng(1000 + shard_id)
                )
                wrapped.spike(factor=20.0, prob=0.1)
                chaos.append(wrapped)
                return wrapped
            return backend

        fleet = ServingFleet.build(2, factory, policy=policy, seed=seed)
        return fleet, chaos[0]

    def run_fleet(self, policy):
        fleet, chaos = self.degraded_fleet(policy)
        LoadGenerator(fleet, rng=np.random.default_rng(2)).run(
            800, mode="open", target_rps=0
        )
        return fleet, chaos

    def test_hedging_bounds_p99_under_single_shard_degradation(self):
        # Acceptance criterion: with 10% of one shard's attempts spiked
        # 20x (≈5% of fleet traffic ≥ ~100 ms), an unhedged fleet's p99
        # sits in spike territory; hedging re-races the spiked attempts
        # and keeps the fleet p99 bounded near the healthy tail.
        unhedged_fleet, _ = self.run_fleet(NoReissue())
        hedged_fleet, chaos = self.run_fleet(SingleR(15.0, 1.0))
        unhedged_p99 = unhedged_fleet.metrics().quantile(0.99)
        hedged_p99 = hedged_fleet.metrics().quantile(0.99)
        assert chaos.spiked > 0, "the chaos spike never fired"
        assert unhedged_p99 > 100.0, "degradation not visible unhedged"
        assert hedged_p99 < 40.0, f"hedged p99 unbounded: {hedged_p99:.1f}"
        assert hedged_p99 < unhedged_p99 / 3.0

    def test_fleet_counters_merge_exactly_under_churn(self):
        # Under spikes + an error burst + deadlines, the merged fleet
        # counters must equal the per-shard sums exactly (digests merge
        # within tolerance; counters admit no slack).
        chaos = []

        def factory(shard_id, rng):
            backend = SyntheticBackend(
                LogNormal(2.0, 0.3), time_scale=2e-5, rng=rng
            )
            wrapped = ChaosBackend(
                backend, rng=np.random.default_rng(2000 + shard_id)
            )
            if shard_id == 0:
                wrapped.spike(factor=10.0, prob=0.2)
                wrapped.error_burst(10)
            chaos.append(wrapped)
            return wrapped

        fleet = ServingFleet.build(
            2,
            factory,
            policy=SingleR(10.0, 0.5),
            deadline_ms=120.0,
            probe_fraction=0.05,
            seed=31,
        )
        result = LoadGenerator(fleet, rng=np.random.default_rng(6)).run(
            600, mode="open", target_rps=0
        )
        merged = fleet.metrics()
        for counter in (
            "completed",
            "reissues_sent",
            "reissue_wins",
            "cancelled_attempts",
            "deadline_exceeded",
            "probes",
        ):
            per_shard_sum = sum(
                getattr(s.client.metrics, counter) for s in fleet.shards
            )
            assert getattr(merged, counter) == per_shard_sum, counter
        assert result.issued == result.completed + result.shed + result.errors
        assert chaos[0].errors_injected == 10

    def test_blackout_shard_degrades_to_deadline_misses(self):
        # A blacked-out shard must not hang the fleet: with a deadline,
        # its requests complete as misses at the deadline latency while
        # the healthy shard is untouched.
        chaos = []

        def factory(shard_id, rng):
            backend = SyntheticBackend(
                Deterministic(5.0), time_scale=2e-4, rng=rng
            )
            if shard_id == 0:
                wrapped = ChaosBackend(backend)
                wrapped.blackout()
                chaos.append(wrapped)
                return wrapped
            return backend

        fleet = ServingFleet.build(
            2, factory, policy=NoReissue(), deadline_ms=30.0, seed=3
        )

        async def drive():
            return [await fleet.request(i) for i in range(10)]

        results = asyncio.run(drive())
        dead = [o for o in results if o is not None and o.deadline_exceeded]
        alive = [
            o for o in results if o is not None and not o.deadline_exceeded
        ]
        assert len(dead) == 5 and len(alive) == 5
        for outcome in dead:
            assert outcome.winner == "none"
            assert outcome.latency_ms == pytest.approx(30.0)
        for outcome in alive:
            assert outcome.latency_ms == pytest.approx(5.0)
        assert chaos[0].blackholed == 5
