"""Tests for the duplicate-cancellation extension (engine option).

Not part of the paper's systems ("once dispatched it is never cancelled")
— an extension modelling the cancellation variant of Lee et al. from the
paper's related work.
"""

import numpy as np
import pytest

from repro.core.policies import ImmediateReissue, NoReissue, SingleR
from repro.distributions import Exponential, Pareto, Uniform
from repro.simulation.arrivals import PoissonArrivals
from repro.simulation.engine import ClusterConfig, simulate_cluster
from repro.simulation.workloads import ServiceModel


def make_config(**over):
    defaults = dict(
        arrivals=PoissonArrivals(1.2),
        service_model=ServiceModel(Exponential(1.0)),
        n_queries=10_000,
        n_servers=4,
        warmup_fraction=0.0,
    )
    defaults.update(over)
    return ClusterConfig(**defaults)


class TestCancellation:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_config(cancel_queued=True, cancel_overhead=-1.0)

    def test_cancellations_counted(self):
        cfg = make_config(cancel_queued=True)
        run = simulate_cluster(cfg, ImmediateReissue(), 3)
        assert run.meta["n_cancelled"] > 0
        assert run.meta["n_cancelled"] <= run.meta["n_reissues_total"]

    def test_no_cancellation_without_flag(self):
        cfg = make_config(cancel_queued=False)
        run = simulate_cluster(cfg, ImmediateReissue(), 3)
        assert run.meta["n_cancelled"] == 0

    def test_cancellation_reduces_utilization(self):
        base = simulate_cluster(make_config(), ImmediateReissue(), 5)
        cancelling = simulate_cluster(
            make_config(cancel_queued=True), ImmediateReissue(), 5
        )
        assert cancelling.utilization < base.utilization

    def test_dispatched_budget_unchanged_by_cancellation(self):
        # Cancellation saves service time, not sends: the measured
        # reissue rate still counts every dispatched copy.
        pol = SingleR(0.2, 0.5)
        a = simulate_cluster(make_config(), pol, 7)
        b = simulate_cluster(make_config(cancel_queued=True), pol, 7)
        assert b.reissue_rate == pytest.approx(a.reissue_rate, abs=0.05)

    def test_cancelled_rows_excluded_from_pair_logs(self):
        cfg = make_config(cancel_queued=True)
        run = simulate_cluster(cfg, ImmediateReissue(), 3)
        n_rows = run.meta["n_reissues_total"] - run.meta["n_cancelled"]
        assert run.reissue_pair_x.size <= n_rows

    def test_overhead_charged(self):
        # With a large cancellation overhead, cancelling stops paying.
        free = simulate_cluster(
            make_config(cancel_queued=True, cancel_overhead=0.0),
            ImmediateReissue(),
            9,
        )
        costly = simulate_cluster(
            make_config(cancel_queued=True, cancel_overhead=5.0),
            ImmediateReissue(),
            9,
        )
        assert costly.utilization > free.utilization

    def test_cancellation_helps_under_load(self):
        """The point of the extension: at moderate load, cancelling stale
        duplicates frees capacity and the tail improves (or at least does
        not degrade) relative to never-cancel with the same policy."""
        cfg_plain = make_config(
            service_model=ServiceModel(Pareto(1.1, 2.0)),
            arrivals=None,
            target_utilization=0.5,
            n_queries=20_000,
        )
        cfg_cancel = make_config(
            service_model=ServiceModel(Pareto(1.1, 2.0)),
            arrivals=None,
            target_utilization=0.5,
            n_queries=20_000,
            cancel_queued=True,
        )
        pol = SingleR(5.0, 0.5)
        tails_plain, tails_cancel = [], []
        for s in (1, 2, 3):
            tails_plain.append(simulate_cluster(cfg_plain, pol, s).tail(0.99))
            tails_cancel.append(simulate_cluster(cfg_cancel, pol, s).tail(0.99))
        assert np.median(tails_cancel) <= np.median(tails_plain) * 1.1

    def test_no_reissue_unaffected(self):
        a = simulate_cluster(make_config(), NoReissue(), 11)
        b = simulate_cluster(make_config(cancel_queued=True), NoReissue(), 11)
        assert np.array_equal(a.latencies, b.latencies)
