"""Tests for the analytic optimizer module and the event queue."""

import numpy as np
import pytest

from repro.core.analytic import (
    multipler_budget,
    optimal_doubler,
    optimal_singled,
    optimal_singler,
    singler_tail_for_delay,
)
from repro.core.policies import SingleD, SingleR
from repro.distributions import Exponential, LogNormal, Pareto
from repro.simulation.events import (
    ARRIVAL,
    DEPARTURE,
    REISSUE_CHECK,
    EventQueue,
)


class TestAnalyticSingleR:
    def test_tail_for_delay_spends_full_budget(self):
        dist = Exponential(1.0)
        t_hi = float(dist.quantile(1 - 1e-9))
        d = float(dist.quantile(0.5))
        t = singler_tail_for_delay(d, dist, dist, 0.95, 0.2, t_hi)
        pol = SingleR(d, 0.2 / float(dist.survival(d)))
        assert t == pytest.approx(
            pol.tail_latency(95.0, dist, dist), rel=1e-6
        )

    def test_optimal_singler_beats_endpoints(self):
        dist = Pareto(1.1, 2.0)
        fit = optimal_singler(dist, dist, percentile=0.95, budget=0.1)
        # Both extremes — immediate (d=0) and the SingleD corner — are in
        # the search space, so the optimum can only be at least as good.
        d0 = singler_tail_for_delay(
            0.0, dist, dist, 0.95, 0.1, float(dist.quantile(1 - 1e-9))
        )
        d1 = optimal_singled(dist, dist, 0.95, 0.1).tail
        assert fit.tail <= d0 + 1e-6
        assert fit.tail <= d1 + 1e-6

    def test_optimal_singled_matches_eq2(self):
        dist = LogNormal(1.0, 1.0)
        fit = optimal_singled(dist, dist, 0.95, 0.2)
        assert isinstance(fit.policy, SingleD)
        assert float(dist.survival(fit.policy.delay)) == pytest.approx(
            0.2, rel=1e-6
        )

    def test_doubler_never_beats_singler(self):
        dist = Exponential(0.8)
        sr = optimal_singler(dist, dist, percentile=0.9, budget=0.2)
        dr = optimal_doubler(dist, dist, percentile=0.9, budget=0.2, grid=10)
        assert dr.tail >= sr.tail - 1e-5 * sr.tail

    def test_doubler_respects_budget(self):
        dist = Exponential(0.8)
        dr = optimal_doubler(dist, dist, percentile=0.9, budget=0.2, grid=8)
        assert dr.policy.expected_budget(dist, dist) <= 0.2 + 1e-6

    def test_multipler_budget_helper(self):
        dist = Exponential(1.0)
        b = multipler_budget([(0.0, 0.5), (1.0, 0.5)], dist, dist)
        # Stage 1 fires with 0.5; stage 2 fires iff the coin succeeds and
        # both the primary and the (possibly issued) first copy are
        # outstanding at t=1.
        s = float(dist.survival(1.0))
        expected = 0.5 + 0.5 * s * (1 - 0.5 * float(dist.cdf(1.0)))
        assert b == pytest.approx(expected)

    def test_validation(self):
        dist = Exponential(1.0)
        with pytest.raises(ValueError):
            optimal_singler(dist, dist, percentile=0.0, budget=0.1)
        with pytest.raises(ValueError):
            optimal_singled(dist, dist, percentile=0.9, budget=0.0)


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(3.0, ARRIVAL, "c")
        q.push(1.0, ARRIVAL, "a")
        q.push(2.0, ARRIVAL, "b")
        assert [e[3] for e in q.drain()] == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        q = EventQueue()
        q.push(1.0, DEPARTURE, "first")
        q.push(1.0, ARRIVAL, "second")
        q.push(1.0, REISSUE_CHECK, "third")
        assert [e[3] for e in q.drain()] == ["first", "second", "third"]

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-0.1, ARRIVAL, None)

    def test_len_bool_peek(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(5.0, ARRIVAL, 1)
        assert q and len(q) == 1
        assert q.peek_time() == 5.0
        q.pop()
        assert not q

    def test_event_tuple_shape(self):
        q = EventQueue()
        q.push(1.5, REISSUE_CHECK, 42)
        time, seq, kind, payload = q.pop()
        assert (time, kind, payload) == (1.5, REISSUE_CHECK, 42)
        assert isinstance(seq, int)
