"""The unified ``repro`` CLI and the deprecated console-script shims."""

import warnings

import pytest

from repro.main import main


class TestScenariosSubcommand:
    def test_list(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "queueing-tail-quick" in out
        assert "redis-tail-taming" in out
        for section in ("engines:", "systems:", "policies:", "distributions:"):
            assert section in out
        for engine in ("reference", "fastsim", "pipeline", "serving"):
            assert engine in out

    def test_validate_bundled(self, capsys):
        assert main(["scenarios", "validate"]) == 0
        out = capsys.readouterr().out
        assert "FAIL" not in out
        assert out.strip().endswith("scenario(s) valid")

    def test_validate_broken_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text(
            'name = "bad"\n\n[system]\nkind = "mainframe"\n\n'
            '[policy]\nkind = "none"\n'
        )
        assert main(["scenarios", "validate", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "FAIL bad" in out
        assert "mainframe" in out

    def test_validate_unparseable_file(self, tmp_path, capsys):
        bad = tmp_path / "broken.toml"
        bad.write_text("name = [unclosed")
        assert main(["scenarios", "validate", str(bad)]) == 1
        assert "FAIL broken.toml" in capsys.readouterr().out


class TestRunSubcommand:
    def test_run_bundled_fastsim(self, capsys):
        rc = main(
            ["run", "queueing-tail-quick", "--engine", "fastsim",
             "--seeds", "101"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "scenario queueing-tail-quick" in out
        assert "engine=fastsim" in out

    def test_run_json_summary(self, capsys):
        import json

        rc = main(
            ["run", "queueing-tail-quick", "--engine", "fastsim",
             "--seeds", "101", "--json"]
        )
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["scenario"] == "queueing-tail-quick"
        assert summary["median_tail_ms"] > 0

    def test_run_toml_path_serving(self, tmp_path, capsys):
        from repro.scenarios import bundled_scenario, save

        sc = bundled_scenario("queueing-tail-quick").with_scale(seeds=(3,))
        path = save(sc, tmp_path / "mine.toml")
        rc = main(
            ["run", str(path), "--engine", "serving", "--requests", "60",
             "--time-scale", "1e-6"]
        )
        assert rc == 0
        assert "engine=serving" in capsys.readouterr().out

    def test_run_unknown_scenario(self, capsys):
        assert main(["run", "does-not-exist"]) == 2
        assert "bundled" in capsys.readouterr().err

    def test_run_missing_toml_path_is_a_cli_error(self, capsys):
        assert main(["run", "/nowhere/missing.toml"]) == 2
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "flags,engine",
        [
            (["--workers", "4"], "fastsim"),
            (["--cache", "/tmp/c"], "reference"),
            (["--requests", "10"], "fastsim"),
            (["--time-scale", "1e-4"], "pipeline"),
        ],
    )
    def test_engine_mismatched_flags_are_rejected(self, flags, engine, capsys):
        rc = main(
            ["run", "queueing-tail-quick", "--engine", engine, *flags]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert flags[0] in err and engine in err

    def test_run_invalid_scenario_lists_problems(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text(
            'name = "bad"\n\n[system]\nkind = "queueing"\nfanout = 3\n\n'
            '[policy]\nkind = "none"\n'
        )
        assert main(["run", str(bad)]) == 2
        assert "fanout" in capsys.readouterr().err


class TestFigureSubcommand:
    def test_figure_list(self, capsys):
        assert main(["figure", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "fig9" in out and "scales:" in out

    def test_figure_bare_id_normalized(self, capsys):
        # `repro figure fig99` == `repro figure run fig99` (and is unknown).
        assert main(["figure", "fig99"]) == 2


class TestServeSubcommand:
    def test_serve_fixed_policy(self, capsys):
        rc = main(
            ["serve", "--backend", "synthetic", "--policy", "singler",
             "--delay", "40", "--prob", "0.5", "--requests", "80",
             "--time-scale", "1e-6", "--report-every", "80"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "== final ==" in out
        assert "requests completed" in out


class TestDeprecatedShims:
    def test_repro_experiment_warns_and_works(self, capsys):
        from repro import cli

        with pytest.warns(DeprecationWarning, match="repro figure"):
            rc = cli.main(["list"])
        assert rc == 0
        assert "fig2" in capsys.readouterr().out

    def test_repro_serve_warns_and_works(self, capsys):
        from repro.serving import cli

        with pytest.warns(DeprecationWarning, match="repro serve"):
            rc = cli.main(["--requests", "0"])
        assert rc == 2  # argument validation still runs after the warning

    def test_unified_cli_does_not_warn(self, capsys):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert main(["scenarios", "list"]) == 0
